"""Persistent point-to-point requests."""

import pytest

from repro.errors import RequestStateError
from repro.mpi import Cluster


def _run(program, nranks=2, **kwargs):
    cluster = Cluster(nranks=nranks, **kwargs)
    return cluster.run(program)


class TestPersistent:
    def test_restartable_transfer(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.send_init(main, 1, 5, 4096,
                                               payload="p")
                for _ in range(3):
                    yield from ps.start(main)
                    yield ps.wait()
                return ps.epoch
            pr = yield from comm.recv_init(main, 0, 5, 4096)
            payloads = []
            for _ in range(3):
                yield from pr.start(main)
                yield pr.wait()
                payloads.append(pr.status.payload)
            return payloads

        results = _run(program)
        assert results[0] == 3
        assert results[1] == ["p", "p", "p"]

    def test_start_while_active_raises(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.send_init(main, 1, 5, 1 << 20)
                yield from ps.start(main)
                yield from ps.start(main)  # previous send not complete
            else:
                yield ctx.sim.timeout(1.0)

        with pytest.raises(RequestStateError, match="active"):
            _run(program)

    def test_wait_before_start_raises(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            ps = yield from comm.send_init(main, (ctx.rank + 1) % 2, 5, 64)
            ps.wait()

        with pytest.raises(RequestStateError):
            _run(program)

    def test_test_polls(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.send_init(main, 1, 5, 64)
                before = ps.test()
                yield from ps.start(main)
                yield ps.wait()
                return (before, ps.test())
            pr = yield from comm.recv_init(main, 0, 5, 64)
            yield from pr.start(main)
            yield pr.wait()

        results = _run(program)
        assert results[0] == (False, True)

    def test_status_before_completion_raises(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            pr = yield from comm.recv_init(main, (ctx.rank + 1) % 2, 5, 64)
            pr.status

        with pytest.raises(RequestStateError):
            _run(program)

    def test_mixed_with_plain_pt2pt_matching_order(self):
        """Persistent and plain sends on the same envelope interleave in
        posting order."""
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.send_init(main, 1, 5, 64, payload="P")
                yield from ps.start(main)
                yield ps.wait()
                yield from comm.send(main, 1, 5, 64, payload="Q")
            else:
                a = yield from comm.recv(main, 0, 5, 64)
                b = yield from comm.recv(main, 0, 5, 64)
                return (a.payload, b.payload)

        results = _run(program)
        assert results[1] == ("P", "Q")
