"""Static analyzer (simlint): rules, suppression, and the shipped tree."""

from pathlib import Path

import pytest

from repro.analysis import (all_rule_infos, lint_file, lint_paths,
                            lint_source)
from repro.analysis.lint import PARSE_ERROR_RULE

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

#: static fixture file -> the one rule it must trigger, exactly once.
STATIC_CASES = [
    ("static_wall_clock.py", "SIM101"),
    ("static_global_random.py", "SIM102"),
    ("static_set_iteration.py", "SIM103"),
    ("static_mutable_default.py", "SIM104"),
    ("static_bare_yield.py", "SIM105"),
    ("static_lock_block.py", "SIM106"),
    ("static_adhoc_instrumentation.py", "SIM107"),
    ("static_cache_key_faults.py", "SIM108"),
]


class TestRuleRegistry:
    def test_at_least_eight_rules_with_four_per_layer(self):
        infos = all_rule_infos()
        static = [i for i in infos if i.category == "static"]
        dynamic = [i for i in infos if i.category == "dynamic"]
        assert len(infos) >= 8
        assert len(static) >= 4
        assert len(dynamic) >= 4

    def test_rule_ids_unique(self):
        ids = [i.id for i in all_rule_infos()]
        assert len(ids) == len(set(ids))


class TestStaticFixtures:
    @pytest.mark.parametrize("fixture,rule", STATIC_CASES)
    def test_rule_fires_exactly_once(self, fixture, rule):
        findings = lint_file(FIXTURES / fixture)
        assert [f.rule for f in findings] == [rule]

    @pytest.mark.parametrize("fixture,rule", STATIC_CASES)
    def test_rule_is_load_bearing(self, fixture, rule):
        # Disabling the rule silences the fixture entirely: the finding
        # really comes from that rule, not from a sibling.
        assert lint_file(FIXTURES / fixture, disabled=[rule]) == []

    def test_clean_fixture_has_no_findings(self):
        assert lint_file(FIXTURES / "static_clean.py") == []


class TestLintSource:
    def test_suppression_comment(self):
        src = "import random  # simlint: skip\n"
        assert lint_source(src) == []
        assert [f.rule for f in lint_source("import random\n")] == ["SIM102"]

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", filename="broken.py")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]

    def test_findings_carry_location(self):
        findings = lint_source("import time\nt = time.time()\n",
                               filename="clock.py")
        assert findings and findings[0].file == "clock.py"
        assert findings[0].line == 2

    def test_default_rng_not_flagged(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng(0)\n"
               "x = rng.uniform()\n")
        assert lint_source(src) == []


class TestShippedTree:
    def test_shipped_tree_is_clean(self):
        # The acceptance criterion: the linter over its own codebase,
        # benchmarks and examples reports nothing.
        root = Path(__file__).parent.parent
        paths = [root / "src" / "repro", root / "benchmarks",
                 root / "examples"]
        findings = lint_paths([p for p in paths if p.exists()])
        assert findings == []
