"""Noise-model tests (§3.3): distributions, determinism, edge cases."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.noise import (ExponentialNoise, GaussianNoise, NoNoise,
                         SingleThreadNoise, TraceNoise, UniformNoise,
                         noise_model_from_name)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestNoNoise:
    def test_all_threads_equal(self):
        times = NoNoise().compute_times(_rng(), 8, 0.01)
        assert np.all(times == 0.01)

    def test_zero_compute(self):
        assert np.all(NoNoise().compute_times(_rng(), 4, 0.0) == 0.0)

    def test_bad_args_rejected(self):
        with pytest.raises(ConfigurationError):
            NoNoise().compute_times(_rng(), 0, 0.01)
        with pytest.raises(ConfigurationError):
            NoNoise().compute_times(_rng(), 4, -1.0)


class TestSingleThreadNoise:
    def test_exactly_one_victim(self):
        times = SingleThreadNoise(4.0).compute_times(_rng(), 16, 0.01)
        delayed = np.sum(times > 0.01)
        assert delayed == 1
        assert np.isclose(times.max(), 0.01 * 1.04)

    def test_fixed_victim(self):
        times = SingleThreadNoise(10.0, victim=3).compute_times(
            _rng(), 8, 0.01)
        assert times[3] == pytest.approx(0.011)
        assert np.sum(times > 0.01) == 1

    def test_victim_varies_with_rng(self):
        noise = SingleThreadNoise(4.0)
        rng = _rng(42)
        victims = {int(np.argmax(noise.compute_times(rng, 16, 0.01)))
                   for _ in range(50)}
        assert len(victims) > 3  # picks different threads

    def test_out_of_range_victim_rejected(self):
        with pytest.raises(ConfigurationError):
            SingleThreadNoise(4.0, victim=9).compute_times(_rng(), 4, 0.01)

    def test_bad_victim_rejected_at_construction(self):
        # A victim that can never be valid fails immediately, not on the
        # first compute_times call deep inside a sweep.
        with pytest.raises(ConfigurationError):
            SingleThreadNoise(4.0, victim=-1)
        with pytest.raises(ConfigurationError):
            SingleThreadNoise(4.0, victim=True)  # bool is not a thread id

    def test_negative_percent_rejected(self):
        with pytest.raises(ConfigurationError):
            SingleThreadNoise(-1.0)


class TestUniformNoise:
    def test_bounds(self):
        times = UniformNoise(4.0).compute_times(_rng(), 1000, 0.01)
        assert np.all(times >= 0.01)
        assert np.all(times <= 0.01 * 1.04)

    def test_mean_near_center(self):
        times = UniformNoise(10.0).compute_times(_rng(), 20000, 0.01)
        assert np.mean(times) == pytest.approx(0.01 * 1.05, rel=0.01)

    def test_zero_percent_is_noise_free(self):
        times = UniformNoise(0.0).compute_times(_rng(), 8, 0.01)
        assert np.all(times == 0.01)


class TestGaussianNoise:
    def test_mean_and_std(self):
        times = GaussianNoise(4.0).compute_times(_rng(), 50000, 0.01)
        assert np.mean(times) == pytest.approx(0.01, rel=0.01)
        assert np.std(times) == pytest.approx(0.01 * 0.04, rel=0.05)

    def test_clipped_at_zero(self):
        # Absurd sigma to force tail draws below zero.
        times = GaussianNoise(500.0).compute_times(_rng(), 10000, 0.01)
        assert np.all(times >= 0.0)


class TestExponentialNoise:
    def test_delays_are_additive_and_nonnegative(self):
        times = ExponentialNoise(4.0).compute_times(_rng(), 1000, 0.01)
        assert np.all(times >= 0.01)

    def test_mean_delay_matches_scale(self):
        times = ExponentialNoise(10.0).compute_times(_rng(), 50000, 0.01)
        assert np.mean(times - 0.01) == pytest.approx(0.001, rel=0.02)

    def test_heavy_tail_exceeds_uniform_bound(self):
        """The point of the model: some draws land far past comp*(1+p)."""
        times = ExponentialNoise(4.0).compute_times(_rng(), 50000, 0.01)
        assert (times > 0.01 * 1.04).sum() > 0

    def test_zero_percent_is_noise_free(self):
        times = ExponentialNoise(0.0).compute_times(_rng(), 8, 0.01)
        assert np.all(times == 0.01)

    def test_factory(self):
        assert isinstance(noise_model_from_name("exponential", 4.0),
                          ExponentialNoise)


class TestTraceNoise:
    def test_replays_delays_in_order(self):
        noise = TraceNoise([1e-3, 2e-3, 3e-3])
        times = noise.compute_times(_rng(), 2, 0.01)
        assert list(times) == pytest.approx([0.011, 0.012])
        times = noise.compute_times(_rng(), 2, 0.01)
        assert list(times) == pytest.approx([0.013, 0.011])  # wraps

    def test_reset(self):
        noise = TraceNoise([1e-3, 2e-3])
        noise.compute_times(_rng(), 1, 0.01)
        noise.reset()
        times = noise.compute_times(_rng(), 1, 0.01)
        assert times[0] == pytest.approx(0.011)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceNoise([])

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceNoise([-1.0])


class TestDeterminism:
    @pytest.mark.parametrize("model", [
        SingleThreadNoise(4.0), UniformNoise(4.0), GaussianNoise(4.0)])
    def test_same_seed_same_draws(self, model):
        a = model.compute_times(_rng(7), 16, 0.01)
        b = model.compute_times(_rng(7), 16, 0.01)
        assert np.array_equal(a, b)


class TestFactory:
    def test_all_names(self):
        assert isinstance(noise_model_from_name("none"), NoNoise)
        assert isinstance(noise_model_from_name("single", 4.0),
                          SingleThreadNoise)
        assert isinstance(noise_model_from_name("uniform", 4.0),
                          UniformNoise)
        assert isinstance(noise_model_from_name("gaussian", 4.0),
                          GaussianNoise)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            noise_model_from_name("pink")

    def test_none_with_percent_rejected(self):
        # "none" with a nonzero magnitude is a contradiction the factory
        # must not silently drop (the CLI used to do exactly that).
        with pytest.raises(ConfigurationError):
            noise_model_from_name("none", 50.0)
        assert isinstance(noise_model_from_name("none", 0.0), NoNoise)

    def test_describe(self):
        assert "uniform" in UniformNoise(4.0).describe()
        assert "4" in UniformNoise(4.0).describe()
