"""Sweep drift comparison."""

import pytest

from repro.core import (PtpBenchmarkConfig, compare_sweeps, drift_table,
                        sweep_from_dict, sweep_to_dict, sweep_ptp)
from repro.errors import ConfigurationError
from repro.mpi import DEFAULT_COSTS


@pytest.fixture(scope="module")
def baseline():
    base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                              compute_seconds=1e-4, iterations=2)
    return sweep_ptp(base, [1024, 65536], [1, 8])


class TestCompare:
    def test_identical_sweeps_show_no_drift(self, baseline):
        assert compare_sweeps(baseline, baseline, "overhead") == []
        assert drift_table([]) == "no drift beyond tolerance"

    def test_loaded_baseline_comparable(self, baseline):
        loaded = sweep_from_dict(sweep_to_dict(baseline))
        assert compare_sweeps(loaded, baseline, "overhead") == []

    def test_substrate_change_is_detected(self, baseline):
        slow_costs = DEFAULT_COSTS.with_overrides(pready_cost=5e-6)
        base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                                  compute_seconds=1e-4, iterations=2,
                                  costs=slow_costs)
        candidate = sweep_ptp(base, [1024, 65536], [1, 8])
        drifts = compare_sweeps(baseline, candidate, "overhead",
                                tolerance=0.10)
        assert drifts  # a 8x pready-cost hike must move small messages
        worst = max(drifts, key=lambda d: abs(d.relative))
        assert worst.candidate > worst.baseline
        text = drift_table(drifts)
        assert "drifted" in text and "+" in text

    def test_tolerance_suppresses_small_drift(self, baseline):
        slow_costs = DEFAULT_COSTS.with_overrides(pready_cost=5e-6)
        base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                                  compute_seconds=1e-4, iterations=2,
                                  costs=slow_costs)
        candidate = sweep_ptp(base, [1024, 65536], [1, 8])
        loose = compare_sweeps(baseline, candidate, "overhead",
                               tolerance=100.0)
        assert loose == []

    def test_grid_mismatch_rejected(self, baseline):
        base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                                  compute_seconds=1e-4, iterations=1)
        other = sweep_ptp(base, [1024], [1])
        with pytest.raises(ConfigurationError, match="different grids"):
            compare_sweeps(baseline, other, "overhead")

    def test_unknown_metric_rejected(self, baseline):
        with pytest.raises(ConfigurationError):
            compare_sweeps(baseline, baseline, "latency")

    def test_negative_tolerance_rejected(self, baseline):
        with pytest.raises(ConfigurationError):
            compare_sweeps(baseline, baseline, "overhead", tolerance=-1.0)
