"""API quality gates: documentation and export hygiene.

These tests keep the library credible as an open-source release: every
public module, class and function must carry a docstring, every name in an
``__all__`` must resolve, and the package must not leak obviously private
names through its public surfaces.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.sim", "repro.machine", "repro.network", "repro.mpi",
    "repro.partitioned", "repro.threadsim", "repro.noise", "repro.metrics",
    "repro.core", "repro.patterns", "repro.proxy", "repro.obs",
]


def _all_modules():
    names = set(PACKAGES)
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                if info.name == "__main__":
                    continue  # importing it would run the CLI
                names.add(f"{pkg_name}.{info.name}")
    return sorted(names)


MODULES = _all_modules()


class TestDocstrings:
    @pytest.mark.parametrize("mod_name", MODULES)
    def test_module_has_docstring(self, mod_name):
        module = importlib.import_module(mod_name)
        assert module.__doc__ and module.__doc__.strip(), mod_name

    @pytest.mark.parametrize("mod_name", MODULES)
    def test_public_callables_are_documented(self, mod_name):
        module = importlib.import_module(mod_name)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if obj.__module__.startswith("repro") and not obj.__doc__:
                    undocumented.append(name)
                if inspect.isclass(obj):
                    for mname, member in inspect.getmembers(obj):
                        if mname.startswith("_"):
                            continue
                        if (inspect.isfunction(member)
                                and member.__module__
                                and member.__module__.startswith("repro")
                                and not member.__doc__):
                            undocumented.append(f"{name}.{mname}")
        assert not undocumented, (
            f"{mod_name}: missing docstrings on {undocumented}")


class TestExports:
    @pytest.mark.parametrize("mod_name", MODULES)
    def test_all_names_resolve(self, mod_name):
        module = importlib.import_module(mod_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{mod_name}.__all__: {name}"

    @pytest.mark.parametrize("pkg_name", PACKAGES)
    def test_packages_define_all(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        assert getattr(pkg, "__all__", None), f"{pkg_name} lacks __all__"

    def test_no_private_names_exported(self):
        for mod_name in MODULES:
            module = importlib.import_module(mod_name)
            for name in getattr(module, "__all__", []):
                if name == "__version__":  # dunder metadata is fine
                    continue
                assert not name.startswith("_"), f"{mod_name}: {name}"

    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(p.isdigit() for p in parts[:2])
