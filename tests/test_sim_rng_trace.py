"""Unit tests for RNG streams."""

import numpy as np

from repro.sim import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42).stream("noise").uniform(size=10)
        b = RandomStreams(42).stream("noise").uniform(size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("noise").uniform(size=10)
        b = RandomStreams(2).stream("noise").uniform(size=10)
        assert not np.array_equal(a, b)

    def test_streams_are_independent(self):
        rs = RandomStreams(0)
        first = rs.stream("a").uniform(size=5)
        rs2 = RandomStreams(0)
        rs2.stream("b").uniform(size=100)  # interleave another consumer
        second = rs2.stream("a").uniform(size=5)
        assert np.array_equal(first, second)

    def test_stream_is_cached(self):
        rs = RandomStreams(0)
        assert rs.stream("x") is rs.stream("x")

    def test_reset_recreates_streams(self):
        rs = RandomStreams(0)
        first = rs.stream("x").uniform(size=3)
        rs.reset()
        again = rs.stream("x").uniform(size=3)
        assert np.array_equal(first, again)

    def test_spawn_is_disjoint(self):
        parent = RandomStreams(0)
        child = parent.spawn("child")
        a = parent.stream("x").uniform(size=5)
        b = child.stream("x").uniform(size=5)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic(self):
        a = RandomStreams(0).spawn("c").stream("x").uniform(size=5)
        b = RandomStreams(0).spawn("c").stream("x").uniform(size=5)
        assert np.array_equal(a, b)
