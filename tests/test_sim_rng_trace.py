"""Unit tests for RNG streams and the trace recorder."""

import numpy as np

from repro.sim import RandomStreams, TraceRecorder


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42).stream("noise").uniform(size=10)
        b = RandomStreams(42).stream("noise").uniform(size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("noise").uniform(size=10)
        b = RandomStreams(2).stream("noise").uniform(size=10)
        assert not np.array_equal(a, b)

    def test_streams_are_independent(self):
        rs = RandomStreams(0)
        first = rs.stream("a").uniform(size=5)
        rs2 = RandomStreams(0)
        rs2.stream("b").uniform(size=100)  # interleave another consumer
        second = rs2.stream("a").uniform(size=5)
        assert np.array_equal(first, second)

    def test_stream_is_cached(self):
        rs = RandomStreams(0)
        assert rs.stream("x") is rs.stream("x")

    def test_reset_recreates_streams(self):
        rs = RandomStreams(0)
        first = rs.stream("x").uniform(size=3)
        rs.reset()
        again = rs.stream("x").uniform(size=3)
        assert np.array_equal(first, again)

    def test_spawn_is_disjoint(self):
        parent = RandomStreams(0)
        child = parent.spawn("child")
        a = parent.stream("x").uniform(size=5)
        b = child.stream("x").uniform(size=5)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic(self):
        a = RandomStreams(0).spawn("c").stream("x").uniform(size=5)
        b = RandomStreams(0).spawn("c").stream("x").uniform(size=5)
        assert np.array_equal(a, b)


class TestTraceRecorder:
    def test_emit_and_filter(self):
        tr = TraceRecorder()
        tr.emit(1.0, "a", rank=0)
        tr.emit(2.0, "b", rank=0)
        tr.emit(3.0, "a", rank=1)
        assert len(tr) == 3
        assert [r.time for r in tr.filter("a")] == [1.0, 3.0]
        assert [r.time for r in tr.filter("a", rank=1)] == [3.0]

    def test_times_first_last(self):
        tr = TraceRecorder()
        for t in (5.0, 1.0, 3.0):
            tr.emit(t, "x")
        assert tr.times("x") == [5.0, 1.0, 3.0]
        assert tr.first("x").time == 1.0
        assert tr.last("x").time == 5.0

    def test_first_on_missing_kind_is_none(self):
        assert TraceRecorder().first("nothing") is None

    def test_span(self):
        tr = TraceRecorder()
        tr.emit(1.0, "start")
        tr.emit(4.0, "end")
        tr.emit(2.0, "end")
        assert tr.span("start", "end") == (1.0, 4.0)
        assert tr.span("start", "missing") is None

    def test_disable_enable(self):
        tr = TraceRecorder()
        tr.disable()
        tr.emit(1.0, "x")
        assert len(tr) == 0
        tr.enable()
        tr.emit(2.0, "x")
        assert len(tr) == 1

    def test_clear(self):
        tr = TraceRecorder()
        tr.emit(1.0, "x")
        tr.clear()
        assert len(tr) == 0

    def test_iteration(self):
        tr = TraceRecorder()
        tr.emit(1.0, "x")
        tr.emit(2.0, "y")
        assert [r.kind for r in tr] == ["x", "y"]
