"""Halo2D (5-point) motif: geometry and execution."""

import pytest

from repro.errors import ConfigurationError
from repro.patterns import (CommMode, EDGES_2D, Halo2DGrid, PatternConfig,
                            opposite_edge, run_halo2d, run_motif)
from repro.patterns.halo2d import _edge_partitions


class TestGrid:
    def test_coords_roundtrip(self):
        grid = Halo2DGrid(3, 2)
        for rank in range(grid.nranks):
            assert grid.rank_of(*grid.coords(rank)) == rank

    def test_neighbors(self):
        grid = Halo2DGrid(3, 3)
        center = grid.rank_of(1, 1)
        assert grid.neighbor(center, 0) == grid.rank_of(0, 1)  # west
        assert grid.neighbor(center, 1) == grid.rank_of(2, 1)  # east
        assert grid.neighbor(center, 2) == grid.rank_of(1, 0)  # north
        assert grid.neighbor(center, 3) == grid.rank_of(1, 2)  # south
        corner = grid.rank_of(0, 0)
        assert grid.neighbor(corner, 0) is None
        assert grid.neighbor(corner, 2) is None

    def test_opposite_edge_involution(self):
        for e in range(4):
            assert opposite_edge(opposite_edge(e)) == e
            assert EDGES_2D[e][0] == EDGES_2D[opposite_edge(e)][0]

    def test_directed_edges(self):
        assert Halo2DGrid(3, 3).directed_edges() == 24
        assert Halo2DGrid(1, 1).directed_edges() == 0

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            Halo2DGrid(0, 1)


class TestEdgeOwnership:
    def test_north_south_split_across_threads(self):
        n = 4
        for edge in (2, 3):
            owners = [_edge_partitions(edge, t, n) for t in range(n)]
            assert owners == [0, 1, 2, 3]

    def test_west_east_owned_by_end_threads(self):
        n = 4
        assert _edge_partitions(0, 0, n) == 0       # west -> thread 0
        assert _edge_partitions(0, 1, n) is None
        assert _edge_partitions(1, n - 1, n) == 0   # east -> last thread
        assert _edge_partitions(1, 0, n) is None


QUICK = dict(compute_seconds=1e-3, steps=2, iterations=1, warmup=1)


class TestExecution:
    @pytest.mark.parametrize("mode", list(CommMode))
    def test_all_modes_complete(self, mode):
        cfg = PatternConfig(mode=mode, threads=4, message_bytes=1 << 16,
                            **QUICK)
        result = run_halo2d(cfg, Halo2DGrid(3, 3))
        assert result.mean_throughput > 0
        assert result.nranks == 9

    def test_bytes_accounting(self):
        cfg = PatternConfig(mode=CommMode.SINGLE, threads=1,
                            message_bytes=1000, **QUICK)
        result = run_halo2d(cfg, Halo2DGrid(2, 2))
        assert result.bytes_per_iteration == 2 * 1000 * 8

    def test_registered_with_runner(self):
        cfg = PatternConfig(mode=CommMode.PARTITIONED, threads=2,
                            message_bytes=1 << 12, **QUICK)
        result = run_motif("halo2d", cfg)
        assert result.mean_throughput > 0

    def test_determinism(self):
        cfg = PatternConfig(mode=CommMode.MULTI, threads=4,
                            message_bytes=1 << 14, **QUICK)
        a = run_halo2d(cfg, Halo2DGrid(2, 2))
        b = run_halo2d(cfg, Halo2DGrid(2, 2))
        assert a.elapsed == b.elapsed

    def test_partitioned_multiple_epochs(self):
        cfg = PatternConfig(mode=CommMode.PARTITIONED, threads=4,
                            message_bytes=1 << 14, compute_seconds=1e-3,
                            steps=3, iterations=2, warmup=0)
        result = run_halo2d(cfg, Halo2DGrid(2, 2))
        assert len(result.elapsed) == 2
