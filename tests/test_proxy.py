"""SNAP proxy, mpiP profiler, and the Figure-13 projection."""

import pytest

from repro.errors import ConfigurationError
from repro.mpi import Cluster
from repro.proxy import (MPIPProfiler, MPIPReport, PAPER_COMM_SPEEDUP,
                         SnapConfig, process_grid, project_speedup,
                         run_snap, snap_projection)


class TestProcessGrid:
    @pytest.mark.parametrize("n,expected", [
        (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)),
        (16, (4, 4)), (128, (8, 16)), (256, (16, 16)),
    ])
    def test_near_square_factorization(self, n, expected):
        assert process_grid(n) == expected

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            process_grid(0)


class TestProfiler:
    def test_attributes_mpi_time(self):
        def program(ctx):
            prof = MPIPProfiler(ctx)
            prof.start_app()
            if ctx.rank == 0:
                yield from prof.timed(
                    ctx.comm.send(ctx.main, 1, 1, 1 << 20), "MPI_Send")
                yield from ctx.main.compute(1e-3)
            else:
                yield from prof.timed(
                    ctx.comm.recv(ctx.main, 0, 1, 1 << 20), "MPI_Recv")
                yield from ctx.main.compute(1e-3)
            prof.stop_app()
            return prof

        cluster = Cluster(nranks=2)
        profilers = cluster.run(program)
        for prof in profilers:
            assert 0 < prof.mpi_time < prof.app_time
            assert 0 < prof.mpi_fraction < 1

    def test_callsite_accounting(self):
        def program(ctx):
            prof = MPIPProfiler(ctx)
            prof.start_app()
            for i in range(3):
                if ctx.rank == 0:
                    yield from prof.timed(
                        ctx.comm.send(ctx.main, 1, i, 64), "MPI_Send")
                else:
                    yield from prof.timed(
                        ctx.comm.recv(ctx.main, 0, i, 64), "MPI_Recv")
            prof.stop_app()
            return prof

        profilers = Cluster(nranks=2).run(program)
        assert profilers[0].sites["MPI_Send"].calls == 3
        assert profilers[0].sites["MPI_Send"].mean_time > 0

    def test_report_aggregation_and_format(self):
        def program(ctx):
            prof = MPIPProfiler(ctx)
            prof.start_app()
            if ctx.rank == 0:
                yield from prof.timed(
                    ctx.comm.send(ctx.main, 1, 1, 64), "MPI_Send")
            else:
                yield from prof.timed(
                    ctx.comm.recv(ctx.main, 0, 1, 64), "MPI_Recv")
            prof.stop_app()
            return prof

        profilers = Cluster(nranks=2).run(program)
        report = MPIPReport.from_profilers(profilers)
        assert report.nranks == 2
        assert 0 < report.mpi_fraction <= 1
        text = report.format()
        assert "mpi%" in text and "MPI_Send" in text
        assert report.top_sites(1)[0][1].total_time >= \
            report.top_sites(2)[1][1].total_time

    def test_empty_aggregation_rejected(self):
        with pytest.raises(ConfigurationError):
            MPIPReport.from_profilers([])


class TestSnapProxy:
    def test_single_node_has_no_mpi_pressure(self):
        result = run_snap(SnapConfig(nodes=1, total_compute=0.1, blocks=4,
                                     octants=1))
        # 1x1 grid: no sweep neighbours; only the allreduce.
        assert result.mpi_fraction < 0.05

    def test_mpi_fraction_grows_with_nodes(self):
        cfg = SnapConfig(nodes=1, total_compute=0.5, blocks=8, octants=1)
        fractions = [
            run_snap(cfg.with_overrides(nodes=n)).mpi_fraction
            for n in (2, 8, 32)
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_compute_per_block_strong_scales(self):
        cfg = SnapConfig(nodes=4)
        assert cfg.compute_per_block() == pytest.approx(
            cfg.total_compute / (4 * cfg.blocks * cfg.octants))
        assert cfg.with_overrides(nodes=8).compute_per_block() == \
            pytest.approx(cfg.compute_per_block() / 2)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SnapConfig(nodes=0)
        with pytest.raises(ConfigurationError):
            SnapConfig(nodes=1, total_compute=0)
        with pytest.raises(ConfigurationError):
            SnapConfig(nodes=1, blocks=0)


class TestProjection:
    def test_amdahl_formula(self):
        assert project_speedup(0.0) == 1.0
        assert project_speedup(1.0, 10.0) == pytest.approx(10.0)
        # Paper's 256-node point: 54.5% MPI at 15.1x -> ~2.04x
        assert project_speedup(0.545, 15.1) == pytest.approx(2.04, abs=0.01)

    def test_formula_validates(self):
        with pytest.raises(ConfigurationError):
            project_speedup(1.5)
        with pytest.raises(ConfigurationError):
            project_speedup(0.5, 0.0)

    def test_projection_series_monotone(self):
        proj = snap_projection(
            node_counts=(2, 8, 32),
            base_config=SnapConfig(nodes=2, total_compute=0.5, blocks=8,
                                   octants=1))
        assert [r.nodes for r in proj.rows] == [2, 8, 32]
        speedups = [r.projected_speedup for r in proj.rows]
        assert speedups == sorted(speedups)
        assert all(s >= 1.0 for s in speedups)
        assert proj.comm_speedup == PAPER_COMM_SPEEDUP

    def test_format(self):
        proj = snap_projection(
            node_counts=(2,),
            base_config=SnapConfig(nodes=2, total_compute=0.2, blocks=4,
                                   octants=1))
        text = proj.format()
        assert "nodes" in text and "speedup" in text and "15.1" in text

    def test_empty_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            snap_projection(node_counts=())
