"""Dynamic checker: each rule proven load-bearing on a fixture program."""

from pathlib import Path

import pytest

from repro.analysis import check_file, enable_checking, run_checked
from repro.analysis.checker import load_program
from repro.errors import ConfigurationError
from repro.mpi import Cluster
from repro.mpi.diagnostics import cluster_report, collect_diagnostics

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

#: dynamic fixture file -> the one rule it must trigger, exactly once.
DYNAMIC_CASES = [
    ("double_pready.py", "PART001"),
    ("out_of_range.py", "PART002"),
    ("wait_without_start.py", "PART003"),
    ("write_after_pready.py", "PART004"),
    ("read_before_parrived.py", "PART005"),
    ("leaked_request.py", "FIN001"),
    ("unmatched_send.py", "FIN002"),
    ("deadlock_two_rank.py", "RES001"),
]


class TestDynamicFixtures:
    @pytest.mark.parametrize("fixture,rule", DYNAMIC_CASES)
    def test_rule_fires_exactly_once(self, fixture, rule):
        report = check_file(FIXTURES / fixture)
        assert [f.rule for f in report.findings] == [rule]
        assert not report.ok

    @pytest.mark.parametrize("fixture,rule", DYNAMIC_CASES)
    def test_rule_is_load_bearing(self, fixture, rule):
        # With the rule disabled the checker stays silent: the finding
        # really comes from that rule's check.
        report = check_file(FIXTURES / fixture, disabled=[rule])
        assert report.findings == []

    def test_clean_program_reports_clean(self):
        report = check_file(FIXTURES / "clean.py")
        assert report.ok
        assert report.findings == []
        assert report.error is None
        assert "CLEAN" in report.format()

    def test_findings_carry_rank_and_time(self):
        report = check_file(FIXTURES / "double_pready.py")
        finding = report.findings[0]
        assert finding.rank == 0
        assert finding.time is not None


class TestEnableChecking:
    def test_checker_attached_everywhere(self):
        cluster = Cluster(nranks=2)
        checker = enable_checking(cluster)
        assert cluster.checker is checker
        # The checker is an ordinary sink subscribed to every part.* kind.
        for name in ("part.init", "part.start", "part.wait", "part.pready",
                     "part.arrived", "part.buffer_write"):
            kind = cluster.obs.schema.kind(name)
            assert cluster.obs.subscribed(kind)
        assert cluster.sim.monitor is checker.monitor

    def test_checking_does_not_perturb_schedule(self):
        loaded = load_program(FIXTURES / "clean.py")
        plain = Cluster(nranks=2)
        plain_results = plain.run(loaded["program"])
        report = run_checked(loaded["program"], nranks=2)
        assert report.results == plain_results

    def test_run_checked_survives_program_errors(self):
        report = check_file(FIXTURES / "out_of_range.py")
        assert report.error is not None
        assert "VIOLATIONS" in report.format()


class TestLoadProgram:
    def test_missing_file_rejected(self):
        with pytest.raises(ConfigurationError):
            load_program(FIXTURES / "does_not_exist.py")

    def test_file_without_program_rejected(self, tmp_path):
        bad = tmp_path / "no_program.py"
        bad.write_text("VALUE = 3\n")
        with pytest.raises(ConfigurationError):
            load_program(bad)

    def test_nranks_honoured(self):
        loaded = load_program(FIXTURES / "clean.py")
        assert loaded["nranks"] == 2


class TestDiagnosticsIntegration:
    def test_checker_findings_surface_per_rank(self):
        loaded = load_program(FIXTURES / "write_after_pready.py")
        cluster = Cluster(nranks=2)
        checker = enable_checking(cluster)
        cluster.run(loaded["program"])
        checker.finalize()
        diags = collect_diagnostics(cluster)
        assert diags[0].checker_findings == 1
        assert diags[1].checker_findings == 0
        report = cluster_report(cluster)
        assert "checks" in report and "1!" in report

    def test_unchecked_cluster_reports_zero(self):
        loaded = load_program(FIXTURES / "clean.py")
        cluster = Cluster(nranks=2)
        cluster.run(loaded["program"])
        diags = collect_diagnostics(cluster)
        assert all(d.checker_findings == 0 for d in diags)
