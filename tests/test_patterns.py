"""Pattern motifs: geometry, execution, mode comparisons."""

import pytest

from repro.errors import ConfigurationError
from repro.patterns import (CommMode, FACES, Halo3DGrid, PatternConfig,
                            Sweep3DGrid, face_partition, opposite_face,
                            run_halo3d, run_motif, run_sweep3d,
                            thread_cube_side, throughput_series)


class TestSweepGrid:
    def test_coords_roundtrip(self):
        grid = Sweep3DGrid(3, 2)
        for rank in range(grid.nranks):
            x, y = grid.coords(rank)
            assert grid.rank_of(x, y) == rank

    def test_corner_has_no_upstream(self):
        nb = Sweep3DGrid(3, 3).neighbors(0)
        assert nb["west"] is None and nb["north"] is None
        assert nb["east"] == 1 and nb["south"] == 3

    def test_far_corner_has_no_downstream(self):
        grid = Sweep3DGrid(3, 3)
        nb = grid.neighbors(8)
        assert nb["east"] is None and nb["south"] is None
        assert nb["west"] == 7 and nb["north"] == 5

    def test_edge_count(self):
        assert Sweep3DGrid(3, 3).edge_count() == 12
        assert Sweep3DGrid(1, 1).edge_count() == 0

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            Sweep3DGrid(0, 3)


class TestHaloGrid:
    def test_coords_roundtrip(self):
        grid = Halo3DGrid(2, 3, 2)
        for rank in range(grid.nranks):
            assert grid.rank_of(*grid.coords(rank)) == rank

    def test_neighbors_at_boundary(self):
        grid = Halo3DGrid(2, 2, 2)
        assert grid.neighbor(0, 0) is None   # -x at boundary
        assert grid.neighbor(0, 1) == 1      # +x
        assert grid.neighbor(0, 3) == 2      # +y
        assert grid.neighbor(0, 5) == 4      # +z

    def test_opposite_face(self):
        for f in range(6):
            assert opposite_face(opposite_face(f)) == f
            assert FACES[f][0] == FACES[opposite_face(f)][0]
            assert FACES[f][1] == -FACES[opposite_face(f)][1]

    def test_directed_edges(self):
        assert Halo3DGrid(2, 2, 2).directed_edges() == 24
        assert Halo3DGrid(1, 1, 1).directed_edges() == 0

    def test_thread_cube_side(self):
        assert thread_cube_side(8) == 2
        assert thread_cube_side(27) == 3
        assert thread_cube_side(64) == 4
        with pytest.raises(ConfigurationError):
            thread_cube_side(10)

    def test_face_partition_mapping(self):
        c = 2
        # thread (0, y, z) owns -x face partition y*c+z
        assert face_partition(0, 0, 1, 0, c) == 2
        assert face_partition(0, 1, 1, 0, c) is None  # not on -x face
        assert face_partition(1, 1, 0, 1, c) == 1     # +x face
        # every face has exactly c*c owners
        for f in range(6):
            owners = [
                (x, y, z)
                for x in range(c) for y in range(c) for z in range(c)
                if face_partition(f, x, y, z, c) is not None
            ]
            assert len(owners) == c * c
            indices = {face_partition(f, *o, c) for o in owners}
            assert indices == set(range(c * c))


QUICK = dict(compute_seconds=1e-3, steps=2, iterations=1, warmup=1)


class TestSweepExecution:
    @pytest.mark.parametrize("mode", list(CommMode))
    def test_all_modes_complete(self, mode):
        cfg = PatternConfig(mode=mode, threads=4, message_bytes=1 << 16,
                            **QUICK)
        result = run_sweep3d(cfg, Sweep3DGrid(2, 2))
        assert result.mean_throughput > 0
        assert result.nranks == 4
        assert len(result.elapsed) == 1

    def test_bytes_accounting(self):
        cfg = PatternConfig(mode=CommMode.SINGLE, threads=1,
                            message_bytes=1000, **QUICK)
        result = run_sweep3d(cfg, Sweep3DGrid(2, 2))
        # 2 steps x 1000 B x 4 edges
        assert result.bytes_per_iteration == 2 * 1000 * 4

    def test_determinism(self):
        cfg = PatternConfig(mode=CommMode.PARTITIONED, threads=4,
                            message_bytes=1 << 16, **QUICK)
        a = run_sweep3d(cfg, Sweep3DGrid(2, 2))
        b = run_sweep3d(cfg, Sweep3DGrid(2, 2))
        assert a.elapsed == b.elapsed

    def test_partitioned_epochs_progress(self):
        cfg = PatternConfig(mode=CommMode.PARTITIONED, threads=2,
                            message_bytes=1 << 10, compute_seconds=1e-4,
                            steps=5, iterations=2, warmup=0)
        result = run_sweep3d(cfg, Sweep3DGrid(2, 1))
        assert len(result.elapsed) == 2
        assert all(e > 0 for e in result.elapsed)


class TestHaloExecution:
    @pytest.mark.parametrize("mode", list(CommMode))
    def test_all_modes_complete(self, mode):
        cfg = PatternConfig(mode=mode, threads=8, message_bytes=1 << 16,
                            **QUICK)
        result = run_halo3d(cfg, Halo3DGrid(2, 2, 2))
        assert result.mean_throughput > 0

    def test_non_cube_threads_rejected_for_threaded_modes(self):
        cfg = PatternConfig(mode=CommMode.MULTI, threads=6,
                            message_bytes=1 << 16, **QUICK)
        with pytest.raises(ConfigurationError, match="cube"):
            run_halo3d(cfg, Halo3DGrid(2, 2, 2))

    def test_single_mode_ignores_thread_cube_rule(self):
        cfg = PatternConfig(mode=CommMode.SINGLE, threads=6,
                            message_bytes=1 << 16, **QUICK)
        result = run_halo3d(cfg, Halo3DGrid(2, 2, 2))
        assert result.mean_throughput > 0

    def test_bytes_accounting(self):
        cfg = PatternConfig(mode=CommMode.SINGLE, threads=1,
                            message_bytes=1000, **QUICK)
        result = run_halo3d(cfg, Halo3DGrid(2, 2, 2))
        assert result.bytes_per_iteration == 2 * 1000 * 24

    def test_oversubscribed_64_threads(self):
        cfg = PatternConfig(mode=CommMode.PARTITIONED, threads=64,
                            message_bytes=1 << 16, compute_seconds=1e-3,
                            steps=1, iterations=1, warmup=0)
        result = run_halo3d(cfg, Halo3DGrid(2, 1, 1))
        assert result.mean_throughput > 0
        # Oversubscription doubles the compute critical path.
        assert result.compute_critical_path > 1.5e-3


class TestRunnerHelpers:
    def test_run_motif_by_name(self):
        cfg = PatternConfig(mode=CommMode.SINGLE, threads=1,
                            message_bytes=1 << 12, **QUICK)
        assert run_motif("sweep3d", cfg, Sweep3DGrid(2, 1)).mean_throughput > 0
        assert run_motif("halo3d", cfg, Halo3DGrid(2, 1, 1)).mean_throughput > 0

    def test_unknown_motif_rejected(self):
        cfg = PatternConfig(mode=CommMode.SINGLE, threads=1,
                            message_bytes=1 << 12, **QUICK)
        with pytest.raises(ConfigurationError):
            run_motif("stencil9", cfg)

    def test_throughput_series_layout(self):
        base = PatternConfig(mode=CommMode.SINGLE, threads=4,
                             message_bytes=1 << 12, **QUICK)
        series = throughput_series(
            "sweep3d", base, message_sizes=[1 << 12, 1 << 14],
            modes=[CommMode.SINGLE, CommMode.PARTITIONED],
            grid=Sweep3DGrid(2, 1))
        assert set(series) == {"single", "partitioned"}
        assert [m for m, _ in series["single"]] == [1 << 12, 1 << 14]
        assert all(v > 0 for _, v in series["partitioned"])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PatternConfig(mode=CommMode.SINGLE, threads=0)
        with pytest.raises(ConfigurationError):
            PatternConfig(mode=CommMode.SINGLE, message_bytes=0)
        with pytest.raises(ConfigurationError):
            PatternConfig(mode=CommMode.SINGLE, steps=0)
        with pytest.raises(ConfigurationError):
            PatternConfig(mode=CommMode.SINGLE, impl="bogus")

    def test_worker_threads_property(self):
        assert PatternConfig(mode=CommMode.SINGLE,
                             threads=8).worker_threads == 1
        assert PatternConfig(mode=CommMode.MULTI,
                             threads=8).worker_threads == 8
