"""Metric definitions (§3.1 equations), timelines, and statistics."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics import (PartitionTimeline, PtpMetrics, SampleSummary,
                           application_availability, early_bird_fraction,
                           overhead, perceived_bandwidth, pruned_mean,
                           summarize, trim_outliers)


class TestEquations:
    def test_overhead_eq1(self):
        assert overhead(2.0, 1.0) == 2.0
        assert overhead(1.0, 1.0) == 1.0

    def test_overhead_validates(self):
        with pytest.raises(ConfigurationError):
            overhead(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            overhead(-1.0, 1.0)

    def test_perceived_bandwidth_eq2(self):
        assert perceived_bandwidth(1000, 1e-6) == pytest.approx(1e9)

    def test_perceived_bandwidth_validates(self):
        with pytest.raises(ConfigurationError):
            perceived_bandwidth(0, 1.0)
        with pytest.raises(ConfigurationError):
            perceived_bandwidth(100, 0.0)

    def test_availability_eq3(self):
        assert application_availability(0.0, 1.0) == 1.0
        assert application_availability(0.5, 1.0) == 0.5
        assert application_availability(2.0, 1.0) == -1.0  # can go negative

    def test_early_bird_eq4(self):
        assert early_bird_fraction(0.5, 1.0) == 0.5
        assert early_bird_fraction(0.0, 1.0) == 0.0
        assert early_bird_fraction(0.0, 0.0) == 0.0  # degenerate window

    def test_early_bird_never_exceeds_one(self):
        with pytest.raises(ConfigurationError):
            early_bird_fraction(2.0, 1.0)
        # Tiny float excess is clamped, not rejected.
        assert early_bird_fraction(1.0 + 1e-12, 1.0) == 1.0


def _timeline(**overrides):
    kwargs = dict(
        message_bytes=1000,
        pready_times=[1.0, 2.0, 3.0, 4.0],
        arrival_times=[1.5, 2.5, 3.5, 4.5],
        join_time=4.2,
        pt2pt_time=1.0,
    )
    kwargs.update(overrides)
    return PartitionTimeline(**kwargs)


class TestTimeline:
    def test_basic_derivations(self):
        tl = _timeline()
        assert tl.partitions == 4
        assert tl.first_pready == 1.0
        assert tl.last_arrival == 4.5
        assert tl.t_part == pytest.approx(3.5)
        assert tl.last_transfer_time == pytest.approx(0.5)
        assert tl.t_after_join == pytest.approx(0.3)
        assert tl.t_before_join == pytest.approx(3.2)

    def test_all_arrived_before_join(self):
        tl = _timeline(join_time=10.0)
        assert tl.t_after_join == 0.0
        assert tl.t_before_join == pytest.approx(tl.t_part)

    def test_last_transfer_is_of_latest_arrival(self):
        # Partition 0 has the longest transfer but partition 3 finishes last.
        tl = _timeline(pready_times=[0.0, 2.0, 3.0, 4.4],
                       arrival_times=[2.0, 2.5, 3.5, 4.5])
        assert tl.last_transfer_time == pytest.approx(0.1)

    def test_transfer_durations(self):
        assert _timeline().transfer_durations() == pytest.approx([0.5] * 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _timeline(pready_times=[1.0])  # length mismatch
        with pytest.raises(ConfigurationError):
            _timeline(arrival_times=[0.5, 2.5, 3.5, 4.5])  # arrival < pready
        with pytest.raises(ConfigurationError):
            _timeline(message_bytes=0)
        with pytest.raises(ConfigurationError):
            _timeline(pt2pt_time=0.0)
        with pytest.raises(ConfigurationError):
            PartitionTimeline(message_bytes=10, pready_times=[],
                              arrival_times=[], join_time=0.0,
                              pt2pt_time=1.0)

    def test_metrics_bundle(self):
        tl = _timeline()
        m = PtpMetrics.from_timeline(tl)
        assert m.overhead == pytest.approx(3.5)
        assert m.perceived_bandwidth == pytest.approx(1000 / 0.5)
        assert m.application_availability == pytest.approx(0.7)
        assert m.early_bird_fraction == pytest.approx(3.2 / 3.5)


class TestStatistics:
    def test_trim_drops_extremes(self):
        values = list(range(100))
        trimmed = trim_outliers(values, 0.05)
        assert trimmed.min() == 5
        assert trimmed.max() == 94

    def test_small_samples_untouched(self):
        assert list(trim_outliers([1.0, 100.0], 0.05)) == [1.0, 100.0]

    def test_pruned_mean_resists_outliers(self):
        values = [1.0] * 95 + [1000.0] * 5
        assert pruned_mean(values, 0.05) == pytest.approx(1.0)

    def test_bad_trim_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            trim_outliers([1.0], 0.5)
        with pytest.raises(ConfigurationError):
            trim_outliers([1.0], -0.1)

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([1.0, float("nan")])

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf")])
    def test_infinities_rejected(self, bad):
        # Any non-finite sample poisons the pruned mean, not just NaN.
        with pytest.raises(ConfigurationError):
            summarize([1.0, bad])
        with pytest.raises(ConfigurationError):
            pruned_mean([1.0, bad, 2.0])

    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert isinstance(s, SampleSummary)
        assert s.count == 4
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == 2.5
        assert s.mean == pytest.approx(2.5)
        assert s.std > 0
        assert s.relative_std == pytest.approx(s.std / 2.5)

    def test_relative_std_zero_mean(self):
        assert summarize([0.0, 0.0]).relative_std == 0.0

    def test_relative_std_zero_mean_with_spread(self):
        # Mean 0 with nonzero spread: infinite relative dispersion, not
        # a ZeroDivisionError and not a silent 0.
        assert summarize([-1.0, 1.0]).relative_std == float("inf")
