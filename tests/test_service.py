"""The sweep service: protocol, scheduler, daemon, and client."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import (PtpBenchmarkConfig, ResultCache, plan_cells,
                        run_cells, run_ptp_benchmark)
from repro.core.parallel import config_fingerprint
from repro.core.runner import EXECUTIONS
from repro.noise import UniformNoise
from repro.service import (ProtocolError, QuotaError, ServiceClient,
                           ServiceError, SweepScheduler, SweepService,
                           config_from_payload, payload_from_config, serve)
from repro.service.protocol import (error_payload, parse_sweep_request,
                                    parse_trial_request, result_to_payload)


def _base(**overrides):
    defaults = dict(message_bytes=64, partitions=1,
                    compute_seconds=1e-4, iterations=2)
    defaults.update(overrides)
    return PtpBenchmarkConfig(**defaults)


def _payload(**overrides):
    defaults = dict(message_bytes=64, partitions=2,
                    compute_seconds=1e-4, iterations=2, warmup=0)
    defaults.update(overrides)
    return defaults


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on an ephemeral port, fresh cache, inline engine."""
    cache = ResultCache(tmp_path / "cache")
    # A generous batch window so a whole test herd lands in one batch
    # (deterministic single-flight accounting), and one dispatcher so
    # batches execute in priority order.
    scheduler = SweepScheduler(cache=cache, jobs=1, quota=64,
                               batch_window=0.25, max_batch=64)
    service = serve(scheduler, port=0)
    yield service, scheduler, cache
    service.stop()


def _client(service, name="test"):
    host, port = service.address
    return ServiceClient(f"http://{host}:{port}", client_id=name,
                         timeout=60.0)


# ---------------------------------------------------------------------------
# Protocol: request validation and payload round trips
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_config_round_trip_addresses_same_fingerprint(self):
        config = _base(partitions=4, noise=UniformNoise(4.0), seed=3)
        rebuilt = config_from_payload(payload_from_config(config))
        assert config_fingerprint(rebuilt) == config_fingerprint(config)

    def test_unknown_field_rejected_with_reason(self):
        with pytest.raises(ProtocolError) as err:
            config_from_payload(_payload(partitons=4))
        assert "partitons" in str(err.value)
        assert err.value.status == 400

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ProtocolError):
            config_from_payload(_payload(partitions=True))

    def test_compute_seconds_and_ms_conflict(self):
        with pytest.raises(ProtocolError):
            config_from_payload(_payload(compute_ms=1.0))

    def test_compute_ms_scales(self):
        payload = _payload()
        del payload["compute_seconds"]
        payload["compute_ms"] = 2.0
        assert config_from_payload(payload).compute_seconds == 2e-3

    def test_config_validation_reason_propagates(self):
        with pytest.raises(ProtocolError) as err:
            config_from_payload(_payload(partitions=-1))
        assert err.value.status == 400

    def test_trial_request_shape(self):
        config, client, priority, fmt, samples = parse_trial_request(
            {"config": _payload(), "client": "c1", "priority": 2,
             "format": "wire", "samples": True})
        assert (client, priority, fmt, samples) == ("c1", 2, "wire", True)
        assert config.partitions == 2

    def test_trial_request_rejects_bad_format(self):
        with pytest.raises(ProtocolError):
            parse_trial_request({"config": _payload(), "format": "xml"})

    def test_sweep_request_plans_cells_like_the_cli(self):
        cells, _, _, _ = parse_sweep_request(
            {"base": _payload(partitions=1), "sizes": [64, 128],
             "counts": [1, 2]})
        local = plan_cells(config_from_payload(_payload(partitions=1)),
                           [64, 128], [1, 2])
        assert [config_fingerprint(c) for c in cells] == \
            [config_fingerprint(c) for c in local]

    def test_sweep_request_needs_grid_axes(self):
        with pytest.raises(ProtocolError):
            parse_sweep_request({"base": _payload(), "sizes": [64]})

    def test_result_payload_carries_identity_and_metrics(self):
        config = _base()
        result = run_ptp_benchmark(config)
        payload = result_to_payload(result)
        assert payload["fingerprint"] == config_fingerprint(config)
        assert payload["event_digest"] == result.event_digest
        assert payload["metrics"]["overhead"] == result.overhead.mean
        assert "samples" not in payload
        assert "samples" in result_to_payload(result, include_samples=True)

    def test_error_payload_shape(self):
        body = error_payload(ProtocolError("nope"))
        assert body == {"error": {"status": 400, "reason": "nope"}}


# ---------------------------------------------------------------------------
# Scheduler: quotas, priorities, shutdown
# ---------------------------------------------------------------------------

def _wait_until_taken(scheduler, timeout=10.0):
    """Spin until the dispatcher has popped everything queued so far."""
    import time
    deadline = time.monotonic() + timeout
    while scheduler._queue:
        assert time.monotonic() < deadline, "dispatcher never took work"
        time.sleep(0.001)


class TestScheduler:
    def test_quota_zero_rejects_everything(self, tmp_path):
        scheduler = SweepScheduler(cache=ResultCache(tmp_path / "c"),
                                   quota=0)
        try:
            with pytest.raises(QuotaError) as err:
                scheduler.submit(_base(), client="greedy")
            assert err.value.status == 429
            assert err.value.client == "greedy"
            assert scheduler.stats.rejected_quota == 1
        finally:
            scheduler.stop()

    def test_quota_releases_when_request_completes(self, tmp_path):
        scheduler = SweepScheduler(cache=ResultCache(tmp_path / "c"),
                                   quota=1, batch_window=0.0)
        try:
            scheduler.execute(_base(), client="one")
            assert scheduler.inflight("one") == 0
            # The slot is free again: a second request is admitted.
            scheduler.execute(_base(seed=1), client="one")
        finally:
            scheduler.stop()

    def test_priority_orders_the_queue(self, tmp_path):
        order = []
        gate = threading.Event()
        scheduler = SweepScheduler(cache=ResultCache(tmp_path / "c"),
                                   quota=64, batch_window=0.0,
                                   max_batch=1, dispatchers=1)
        real = scheduler._run_batch

        def observed(batch):
            gate.wait(30.0)
            order.extend(r.priority for r in batch)
            real(batch)

        scheduler._run_batch = observed
        try:
            # The first submit occupies the lone dispatcher (blocked on
            # the gate); the rest pile up and must drain by priority.
            first = scheduler.submit(_base(seed=0), priority=0)
            _wait_until_taken(scheduler)
            rest = [scheduler.submit(_base(seed=i), priority=p)
                    for i, p in ((1, 1), (2, 5), (3, 3))]
            gate.set()
            for request in [first] + rest:
                scheduler.wait(request, timeout=60.0)
            assert order == [0, 5, 3, 1]
        finally:
            scheduler.stop()

    def test_stop_fails_pending_requests(self, tmp_path):
        gate = threading.Event()
        scheduler = SweepScheduler(cache=ResultCache(tmp_path / "c"),
                                   quota=64, batch_window=0.0,
                                   max_batch=1, dispatchers=1)
        real = scheduler._run_batch
        scheduler._run_batch = lambda batch: (gate.wait(30.0), real(batch))
        blocker = scheduler.submit(_base(seed=0))
        _wait_until_taken(scheduler)    # the dispatcher holds `blocker`
        queued = scheduler.submit(_base(seed=1))
        scheduler.stop(timeout=0.1)     # fails `queued` without running it
        gate.set()
        with pytest.raises(ServiceError) as err:
            scheduler.wait(queued, timeout=30.0)
        assert err.value.status == 503
        with pytest.raises(ServiceError):
            scheduler.submit(_base(seed=2))
        scheduler.stop()

    def test_batch_failure_answers_every_requester(self, tmp_path,
                                                   monkeypatch):
        scheduler = SweepScheduler(cache=ResultCache(tmp_path / "c"),
                                   quota=64, batch_window=0.25)
        monkeypatch.setattr(
            "repro.service.scheduler.run_cells",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")))
        try:
            requests = [scheduler.submit(_base(seed=i)) for i in range(3)]
            for request in requests:
                with pytest.raises(ServiceError) as err:
                    scheduler.wait(request, timeout=30.0)
                assert "boom" in err.value.reason
            assert scheduler.stats.failed == 3
            assert scheduler.inflight() == 0
        finally:
            scheduler.stop()


# ---------------------------------------------------------------------------
# Daemon: the satellite acceptance tests
# ---------------------------------------------------------------------------

class TestDaemon:
    def test_concurrent_clients_execute_uncached_config_once(self,
                                                             tmp_path):
        """N clients, one uncached config: one execution, N-1 shared.

        One dispatcher with a generous batch window, so the whole herd
        deterministically lands in a single batch and the N-1
        duplicates are answered as single-flight followers (with more
        dispatchers some land in later batches and surface as cache
        hits instead — same single execution, different counter).
        """
        scheduler = SweepScheduler(cache=ResultCache(tmp_path / "c"),
                                   jobs=1, quota=64, batch_window=1.0,
                                   max_batch=64, dispatchers=1)
        service = serve(scheduler, port=0)
        n = 8
        payloads = [None] * n
        EXECUTIONS.reset()

        def hit(i):
            payloads[i] = _client(service, f"c{i}").trial(_payload())

        try:
            threads = [threading.Thread(target=hit, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
        finally:
            service.stop()
        assert all(p is not None for p in payloads)
        assert len({p["event_digest"] for p in payloads}) == 1
        assert EXECUTIONS.value == 1
        stats = scheduler.stats.as_dict()
        assert stats["executed"] == 1
        assert stats["singleflight_hits"] == n - 1

    def test_quota_exceeded_is_a_429(self, tmp_path):
        scheduler = SweepScheduler(cache=ResultCache(tmp_path / "c"),
                                   quota=0)
        service = serve(scheduler, port=0)
        try:
            with pytest.raises(QuotaError) as err:
                _client(service, "greedy").trial(_payload())
            assert err.value.status == 429
            assert "quota" in str(err.value)
        finally:
            service.stop()

    def test_malformed_config_is_a_structured_400(self, daemon):
        service, _, _ = daemon
        host, port = service.address
        body = json.dumps({"config": {"partitons": 4}}).encode()
        request = urllib.request.Request(
            f"http://{host}:{port}/trial", data=body,
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 400
        payload = json.loads(err.value.read())
        assert payload["error"]["status"] == 400
        assert "partitons" in payload["error"]["reason"]

    def test_invalid_json_is_a_400(self, daemon):
        service, _, _ = daemon
        host, port = service.address
        request = urllib.request.Request(
            f"http://{host}:{port}/trial", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 400
        assert "JSON" in json.loads(err.value.read())["error"]["reason"]

    def test_unknown_endpoint_is_a_404(self, daemon):
        service, _, _ = daemon
        host, port = service.address
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"http://{host}:{port}/nope",
                                   timeout=30.0)
        assert err.value.code == 404

    def test_wire_result_is_byte_identical_to_local_run(self, daemon):
        """The daemon's answer decodes to the exact local-run digest."""
        service, _, _ = daemon
        config = config_from_payload(_payload(seed=5))
        remote = _client(service).trial_result(config)
        local = run_ptp_benchmark(config)
        assert remote.event_digest == local.event_digest
        assert [s.metrics for s in remote.samples] == \
            [s.metrics for s in local.samples]

    def test_sweep_matches_serial_cli_run(self, daemon):
        """A service sweep and a serial engine run agree digest-for-digest."""
        service, _, _ = daemon
        base = _payload(partitions=1)
        cells = _client(service).sweep(base, sizes=[64, 128],
                                       counts=[1, 2])
        local, _ = run_cells(
            plan_cells(config_from_payload(base), [64, 128], [1, 2]),
            jobs=1)
        assert [c["event_digest"] for c in cells] == \
            [r.event_digest for r in local]

    def test_repeat_request_is_a_cache_hit(self, daemon):
        service, scheduler, _ = daemon
        client = _client(service)
        first = client.trial(_payload(seed=7))
        second = client.trial(_payload(seed=7))
        assert first["event_digest"] == second["event_digest"]
        assert scheduler.stats.as_dict()["cache_hits"] >= 1

    def test_healthz_and_stats_endpoints(self, daemon):
        service, _, _ = daemon
        client = _client(service)
        health = client.healthz()
        assert health["status"] == "ok"
        client.trial(_payload(seed=11))
        stats = client.stats()
        assert stats["scheduler"]["served"] >= 1
        assert "entries" in stats["cache"]

    def test_service_events_are_emitted(self, daemon):
        service, scheduler, _ = daemon
        mem = scheduler.obs.record("service.*")
        _client(service, "obsy").trial(_payload(seed=13))
        kinds = {record.kind.name for record in mem}
        assert "service.request" in kinds
        assert "service.response" in kinds
        assert "service.batch" in kinds
