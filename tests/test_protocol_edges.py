"""Protocol edge cases: self-sends, zero-ish sizes, payloads everywhere,
intra-node paths, ordering across protocols."""

import pytest

from repro.mpi import Cluster, ThreadingMode
from repro.network import Placement
from repro.partitioned import IMPL_MPIPCL, IMPL_NATIVE


class TestSelfSend:
    def test_rank_can_message_itself(self):
        def program(ctx):
            sreq = yield from ctx.comm.isend(ctx.main, ctx.rank, 7, 64,
                                             payload="me")
            status = yield from ctx.comm.recv(ctx.main, ctx.rank, 7, 64)
            yield sreq.wait()
            return status.payload

        assert Cluster(nranks=1).run(program) == ["me"]

    def test_self_rendezvous(self):
        big = 1 << 20

        def program(ctx):
            rreq = yield from ctx.comm.irecv(ctx.main, 0, 3, big)
            sreq = yield from ctx.comm.isend(ctx.main, 0, 3, big,
                                             payload="large-self")
            yield rreq.wait()
            yield sreq.wait()
            return rreq.status.payload

        assert Cluster(nranks=1).run(program) == ["large-self"]


class TestSmallAndOddSizes:
    @pytest.mark.parametrize("nbytes", [1, 2, 3, 63, 64, 65, 4097])
    def test_odd_sizes_transfer(self, nbytes):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 1, nbytes)
            else:
                status = yield from ctx.comm.recv(ctx.main, 0, 1, nbytes)
                return status.nbytes

        assert Cluster(nranks=2).run(program)[1] == nbytes

    def test_odd_partition_split_transfers_fully(self):
        """10 bytes over 3 partitions: sizes 4/3/3 must all arrive."""
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 10, 3)
                yield from ps.start(main)
                yield from ps.pready_range(main, 0, 2)
                yield from ps.wait(main)
                return ps.sizes
            pr = yield from comm.precv_init(main, 0, 5, 10, 3)
            yield from pr.start(main)
            yield from pr.wait(main)
            return pr.arrived_count

        results = Cluster(nranks=2).run(program)
        assert results[0] == [4, 3, 3]
        assert results[1] == 3


class TestPartitionedPayloads:
    @pytest.mark.parametrize("impl", [IMPL_MPIPCL, IMPL_NATIVE])
    def test_arrival_events_carry_timestamps(self, impl):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 2,
                                                impl=impl)
                yield from ps.start(main)
                yield from ps.pready(main, 0)
                yield ctx.sim.timeout(1e-3)
                yield from ps.pready(main, 1)
                yield from ps.wait(main)
            else:
                pr = yield from comm.precv_init(main, 0, 5, 4096, 2,
                                                impl=impl)
                yield from pr.start(main)
                yield from pr.wait(main)
                t0 = pr.arrived_event(0).value[0]
                t1 = pr.arrived_event(1).value[0]
                return t1 - t0

        gap = Cluster(nranks=2).run(program)[1]
        assert gap == pytest.approx(1e-3, rel=0.2)


class TestIntraNodePaths:
    def test_partitioned_over_shared_memory(self):
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 1 << 16, 1 << 16,
                                                4)
                yield from ps.start(main)
                yield from ps.pready_range(main, 0, 3)
                yield from ps.wait(main)
            else:
                pr = yield from comm.precv_init(main, 0, 1 << 16, 1 << 16,
                                                4)
                yield from pr.start(main)
                yield from pr.wait(main)
                return ctx.sim.now

        intra = Cluster(nranks=2,
                        placement=Placement.block(2, 2)).run(program)[1]
        inter = Cluster(nranks=2).run(program)[1]
        assert intra < inter  # shm path is quicker end to end

    def test_collectives_over_mixed_placement(self):
        # 4 ranks on 2 nodes: barriers and reductions cross both paths.
        def program(ctx):
            yield from ctx.comm.barrier(ctx.main)
            total = yield from ctx.comm.allreduce(ctx.main, 8,
                                                  value=float(ctx.rank))
            return total

        results = Cluster(nranks=4,
                          placement=Placement.block(4, 2)).run(program)
        assert results == [6.0] * 4


class TestCrossProtocolOrdering:
    def test_eager_and_rendezvous_same_envelope_stay_ordered(self):
        """A small (eager) then large (rendezvous) message on one envelope
        must match receives in posting order despite different protocols."""
        small, large = 1024, 1 << 20

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 9, small,
                                         payload="first")
                yield from ctx.comm.send(ctx.main, 1, 9, large,
                                         payload="second")
            else:
                a = yield from ctx.comm.recv(ctx.main, 0, 9, large)
                b = yield from ctx.comm.recv(ctx.main, 0, 9, large)
                return (a.payload, b.payload)

        assert Cluster(nranks=2).run(program)[1] == ("first", "second")

    def test_interleaved_partitioned_and_pt2pt(self):
        """Partitioned traffic shares the NIC with plain point-to-point
        without corrupting either."""
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 1 << 16, 4)
                yield from ps.start(main)
                yield from ps.pready(main, 0)
                yield from comm.send(main, 1, 77, 2048, payload="mixed")
                yield from ps.pready_range(main, 1, 3)
                yield from ps.wait(main)
            else:
                pr = yield from comm.precv_init(main, 0, 5, 1 << 16, 4)
                yield from pr.start(main)
                status = yield from comm.recv(main, 0, 77, 2048)
                yield from pr.wait(main)
                return (status.payload, pr.arrived_count)

        assert Cluster(nranks=2).run(program)[1] == ("mixed", 4)


class TestThreadingModeAcrossFeatures:
    def test_partitioned_under_serialized_single_thread(self):
        """A single-threaded partitioned user works under SERIALIZED."""
        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, 4096, 2)
                yield from ps.start(main)
                yield from ps.pready_range(main, 0, 1)
                yield from ps.wait(main)
            else:
                pr = yield from comm.precv_init(main, 0, 5, 4096, 2)
                yield from pr.start(main)
                yield from pr.wait(main)
                return pr.arrived_count

        results = Cluster(nranks=2,
                          mode=ThreadingMode.SERIALIZED).run(program)
        assert results[1] == 2
