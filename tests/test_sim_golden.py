"""Golden event-digest tests: the kernel fast paths must be invisible.

Every optimization inside :mod:`repro.sim.core` (immediate-event ring,
time-bucketed future queue, recycled sleeps, single-waiter dispatch) and
:mod:`repro.obs` (batched digest serialization, record-free emission) is
required to leave the observable event stream bit-identical.  These
fixed-seed mini-sweep digests were captured before the fast paths landed;
any change to event ordering, timing, or payload rendering shows up here
as a hash mismatch.

If one of these fails after an intentional semantic change to the model
layer (new event kinds, different timing model), re-capture the digests
and say so in the commit; a failure after a kernel-only change is a bug.
"""

import pytest

from repro.core import PtpBenchmarkConfig
from repro.core.runner import run_ptp_benchmark

#: (config kwargs, expected sha256 of the canonical event stream).
GOLDEN = [
    (dict(message_bytes=4096, partitions=4, iterations=2, warmup=1,
          seed=7),
     "17971fc30d26c1e63a06990c6834072bc957f7a297ce0907710d0efe30a3d743"),
    (dict(message_bytes=65536, partitions=8, iterations=2, warmup=0,
          seed=7),
     "091a960a6a6788390729daecccdb478377e4f1f6a5e8cbeca55fc429bd542765"),
    (dict(message_bytes=262144, partitions=16, iterations=1, warmup=0,
          seed=13, cache="cold"),
     "d892b2aaac77cc9dc8ffa2b25cb9acf2cb3e421050b560c0245566fb4d3a1c1a"),
    (dict(message_bytes=16384, partitions=8, iterations=2, warmup=1,
          seed=42, impl="native"),
     "e6c6de576cdbd7594a85c6c1ee6a046b6d733cfe29f8500666d2cc3e85140374"),
]


@pytest.mark.parametrize("kwargs,expected", GOLDEN,
                         ids=[f"{kw['message_bytes']}B-p{kw['partitions']}"
                              f"-s{kw['seed']}" for kw, _ in GOLDEN])
def test_golden_digest(kwargs, expected):
    result = run_ptp_benchmark(PtpBenchmarkConfig(**kwargs))
    assert result.event_digest == expected


@pytest.mark.parametrize("kwargs,expected", GOLDEN[:1],
                         ids=["repeatable"])
def test_digest_is_repeatable_within_process(kwargs, expected):
    first = run_ptp_benchmark(PtpBenchmarkConfig(**kwargs)).event_digest
    second = run_ptp_benchmark(PtpBenchmarkConfig(**kwargs)).event_digest
    assert first == second == expected


def test_golden_digests_via_worker_pool():
    """The pool path must reproduce the pinned digests bit for bit.

    The workers ship raw timelines + digests back to the manager, so a
    scheduling or serialization bug on the pool path would surface here
    even if the simulator itself is untouched.
    """
    from repro.core import WorkerPool
    from repro.core.pool import result_from_shipped

    configs = [PtpBenchmarkConfig(**kwargs) for kwargs, _ in GOLDEN]
    pool = WorkerPool(2)
    try:
        got = dict(pool.run(configs))
    finally:
        pool.shutdown()
    assert [result_from_shipped(configs[i], got[i]).event_digest
            for i in range(len(GOLDEN))] == \
        [expected for _, expected in GOLDEN]
