"""The binary wire codec: lossless frames, strict decoding, dict fallback."""

import struct

import pytest

from repro.core import PtpBenchmarkConfig, plan_cells, run_ptp_benchmark
from repro.core.pool import ship_result
from repro.core.wire import (WIRE_MAGIC, WIRE_VERSION, WireError,
                             decode_payload, decode_result, encode_result,
                             is_wire_frame)
from repro.errors import ReproError
from repro.faults import FaultOutcome
from repro.noise import UniformNoise


def _base(**overrides):
    defaults = dict(message_bytes=1024, partitions=4,
                    compute_seconds=1e-4, iterations=3)
    defaults.update(overrides)
    return PtpBenchmarkConfig(**defaults)


def _result(**overrides):
    config = plan_cells(_base(**overrides), [1024], [4])[0]
    return config, run_ptp_benchmark(config)


def _assert_lossless(fresh, back):
    assert back.event_digest == fresh.event_digest
    assert back.source == fresh.source
    assert back.trials == fresh.trials
    assert back.fault_outcome == fresh.fault_outcome
    assert [s.iteration for s in back.samples] == \
        [s.iteration for s in fresh.samples]
    assert [s.timeline for s in back.samples] == \
        [s.timeline for s in fresh.samples]
    assert [s.metrics for s in back.samples] == \
        [s.metrics for s in fresh.samples]


class TestRoundTrip:
    def test_des_result_is_lossless(self):
        config, fresh = _result(noise=UniformNoise(4.0))
        frame = encode_result(fresh)
        assert is_wire_frame(frame)
        assert frame[:4] == WIRE_MAGIC
        _assert_lossless(fresh, decode_result(config, frame))

    def test_sha256_digest_packs_as_raw_bytes(self):
        config, fresh = _result()
        assert fresh.event_digest is not None
        assert len(fresh.event_digest) == 64
        frame = encode_result(fresh)
        # Raw 32 bytes, not 64 hex characters, ride the frame.
        assert bytes.fromhex(fresh.event_digest) in frame
        assert fresh.event_digest.encode("ascii") not in frame
        assert decode_result(config, frame).event_digest == \
            fresh.event_digest

    def test_non_hex_digest_falls_back_to_string(self):
        config, fresh = _result()
        fresh.event_digest = "not-a-sha256"
        back = decode_result(config, encode_result(fresh))
        assert back.event_digest == "not-a-sha256"

    def test_missing_digest_survives(self):
        config, fresh = _result()
        fresh.event_digest = None
        assert decode_result(config, encode_result(fresh)).event_digest \
            is None

    def test_fault_outcome_round_trips(self):
        config, fresh = _result()
        fresh.fault_outcome = FaultOutcome(
            delivered=False, drops=3, retransmits=2, duplicates=1,
            acks=7, abandoned=1, stalls=4, fail_stops=1,
            reason="retry budget exhausted")
        _assert_lossless(fresh, decode_result(config, encode_result(fresh)))

    def test_interned_and_inline_sources(self):
        config, fresh = _result()
        for source in ("des", "analytic", "merged-exotic"):
            fresh.source = source
            back = decode_result(config, encode_result(fresh))
            assert back.source == source

    def test_trials_survive(self):
        config, fresh = _result()
        fresh.trials = 17
        assert decode_result(config, encode_result(fresh)).trials == 17

    def test_timestamps_round_trip_bit_exact(self):
        # binary64 carries every Python float exactly; compare the IEEE
        # bit patterns the bit-for-bit digests depend on.
        def bits(values):
            return [struct.pack("<d", v) for v in values]

        config, fresh = _result(noise=UniformNoise(4.0))
        back = decode_result(config, encode_result(fresh))
        for s, b in zip(fresh.samples, back.samples):
            assert bits(s.timeline.pready_times) == \
                bits(b.timeline.pready_times)
            assert bits(s.timeline.arrival_times) == \
                bits(b.timeline.arrival_times)


class TestStrictDecoding:
    def test_bad_magic_rejected(self):
        config, fresh = _result()
        frame = bytearray(encode_result(fresh))
        frame[:4] = b"NOPE"
        assert not is_wire_frame(bytes(frame))
        with pytest.raises(WireError, match="magic"):
            decode_result(config, bytes(frame))

    def test_version_mismatch_rejected(self):
        config, fresh = _result()
        frame = bytearray(encode_result(fresh))
        frame[4] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="version"):
            decode_result(config, bytes(frame))

    def test_truncation_rejected_everywhere(self):
        config, fresh = _result()
        frame = encode_result(fresh)
        for cut in (0, 3, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireError):
                decode_result(config, frame[:cut])

    def test_trailing_garbage_rejected(self):
        config, fresh = _result()
        with pytest.raises(WireError, match="trailing"):
            decode_result(config, encode_result(fresh) + b"\x00")

    def test_wire_error_is_a_repro_error(self):
        assert issubclass(WireError, ReproError)


class TestPayloadDispatch:
    def test_binary_frame_dispatches_to_codec(self):
        config, fresh = _result()
        _assert_lossless(fresh, decode_payload(config, encode_result(fresh)))

    def test_dict_payload_dispatches_to_fallback(self):
        config, fresh = _result(noise=UniformNoise(4.0))
        shipped = ship_result(fresh)
        assert isinstance(shipped, dict)
        assert not is_wire_frame(shipped)
        _assert_lossless(fresh, decode_payload(config, shipped))

    def test_codec_and_fallback_agree(self):
        config, fresh = _result(noise=UniformNoise(4.0))
        via_frame = decode_payload(config, encode_result(fresh))
        via_dict = decode_payload(config, ship_result(fresh))
        assert via_frame.event_digest == via_dict.event_digest
        assert [s.timeline for s in via_frame.samples] == \
            [s.timeline for s in via_dict.samples]
