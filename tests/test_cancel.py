"""``MPI_Cancel`` semantics on pending receives."""

from repro.mpi import Cluster


class TestCancel:
    def test_cancel_unmatched_receive(self):
        def program(ctx):
            if ctx.rank == 0:
                req = yield from ctx.comm.irecv(ctx.main, 1, 99, 64)
                ok = yield from ctx.comm.cancel(ctx.main, req)
                yield req.wait()
                return (ok, req.status.cancelled, req.status.nbytes)
            yield ctx.sim.timeout(1e-6)

        results = Cluster(nranks=2).run(program)
        assert results[0] == (True, True, 0)

    def test_cancel_completed_receive_fails(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 5, 64, payload="v")
            else:
                req = yield from ctx.comm.irecv(ctx.main, 0, 5, 64)
                yield req.wait()
                ok = yield from ctx.comm.cancel(ctx.main, req)
                return (ok, req.status.cancelled, req.status.payload)

        results = Cluster(nranks=2).run(program)
        assert results[1] == (False, False, "v")

    def test_cancelled_receive_never_matches_late_message(self):
        """A message arriving after the cancel must match the *next*
        receive on that envelope, not the cancelled one."""
        def program(ctx):
            if ctx.rank == 0:
                first = yield from ctx.comm.irecv(ctx.main, 1, 5, 64)
                ok = yield from ctx.comm.cancel(ctx.main, first)
                assert ok
                status = yield from ctx.comm.recv(ctx.main, 1, 5, 64)
                return status.payload
            yield ctx.sim.timeout(1e-3)
            yield from ctx.comm.send(ctx.main, 0, 5, 64, payload="late")

        results = Cluster(nranks=2).run(program)
        assert results[0] == "late"

    def test_cancel_emits_event(self):
        def program(ctx):
            if ctx.rank == 0:
                req = yield from ctx.comm.irecv(ctx.main, 1, 7, 64)
                yield from ctx.comm.cancel(ctx.main, req)
            yield ctx.sim.timeout(1e-6)

        cluster = Cluster(nranks=2)
        mem = cluster.obs.record("recv.cancelled")
        cluster.run(program)
        assert mem.filter("recv.cancelled", tag=7)
