"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (PartitionTimeline, PtpMetrics, pruned_mean,
                           trim_outliers)
from repro.mpi import Envelope, MatchingEngine
from repro.network import NetworkParams
from repro.noise import GaussianNoise, SingleThreadNoise, UniformNoise
from repro.partitioned import partition_sizes
from repro.proxy import process_grid, project_speedup
from repro.sim import Simulator
from repro.threadsim import SimBarrier


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(d):
            yield sim.timeout(d)
            fired.append(sim.now)

        for d in delays:
            sim.process(proc(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert sim.now == max(delays)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                              st.floats(min_value=0, max_value=100)),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_chained_timeouts_accumulate(self, pairs):
        sim = Simulator()
        ends = []

        def proc(a, b):
            yield sim.timeout(a)
            yield sim.timeout(b)
            ends.append(sim.now)

        for a, b in pairs:
            sim.process(proc(a, b))
        sim.run()
        assert sorted(ends) == sorted(a + b for a, b in pairs)


class TestPartitionSizesProperties:
    @given(st.integers(min_value=1, max_value=1 << 26),
           st.integers(min_value=1, max_value=512))
    @settings(max_examples=200)
    def test_sizes_sum_and_balance(self, nbytes, parts):
        if nbytes < parts:
            with pytest.raises(Exception):
                partition_sizes(nbytes, parts)
            return
        sizes = partition_sizes(nbytes, parts)
        assert len(sizes) == parts
        assert sum(sizes) == nbytes
        assert max(sizes) - min(sizes) <= 1
        assert min(sizes) >= 1


class TestMatchingProperties:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_fifo_matching_preserves_posting_order(self, envelopes):
        """Arrivals always match the earliest compatible posted receive."""
        eng = MatchingEngine()
        for i, (src, tag) in enumerate(envelopes):
            eng.post_recv(("req", i, src, tag), source=src, tag=tag,
                          comm_id=0)
        matched_order = []
        for src, tag in envelopes:
            entry, _ = eng.match_arrival(Envelope(src, tag, 0))
            assert entry is not None
            matched_order.append(entry.request[1])
        # For each (src, tag) class, matched indices must be increasing.
        by_class = {}
        for idx in matched_order:
            _, i, src, tag = ("req", idx, *envelopes[idx])
            by_class.setdefault((src, tag), []).append(idx)
        for indices in by_class.values():
            assert indices == sorted(indices)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_unexpected_then_posted_conservation(self, tags):
        """Every stored unexpected frame is found exactly once."""
        eng = MatchingEngine()
        for i, tag in enumerate(tags):
            eng.store_unexpected(("frame", i), Envelope(0, tag, 0),
                                 now=float(i))
        found = 0
        for tag in tags:
            hit, _ = eng.find_unexpected(source=0, tag=tag, comm_id=0)
            assert hit is not None
            found += 1
        assert found == len(tags)
        assert eng.unexpected_depth == 0


class TestNetworkProperties:
    @given(st.integers(min_value=0, max_value=1 << 28))
    @settings(max_examples=100)
    def test_wire_time_monotone_in_size(self, nbytes):
        p = NetworkParams()
        assert p.wire_time(nbytes + 4096) >= p.wire_time(nbytes) > 0

    @given(st.integers(min_value=1, max_value=1 << 24),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=100)
    def test_splitting_never_reduces_total_wire_time(self, nbytes, parts):
        """Headers make n partitions cost at least one whole message."""
        if nbytes < parts:
            return
        p = NetworkParams()
        whole = p.wire_time(nbytes)
        split = sum(p.wire_time(s) for s in partition_sizes(nbytes, parts))
        assert split >= whole - 1e-15


class TestNoiseProperties:
    @given(st.integers(min_value=1, max_value=128),
           st.floats(min_value=1e-6, max_value=1.0),
           st.floats(min_value=0.0, max_value=100.0),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=100)
    def test_uniform_noise_bounds(self, nthreads, comp, pct, seed):
        rng = np.random.default_rng(seed)
        times = UniformNoise(pct).compute_times(rng, nthreads, comp)
        assert len(times) == nthreads
        assert np.all(times >= comp - 1e-15)
        assert np.all(times <= comp * (1 + pct / 100) + 1e-12)

    @given(st.integers(min_value=1, max_value=128),
           st.floats(min_value=1e-6, max_value=1.0),
           st.floats(min_value=0.0, max_value=100.0),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=100)
    def test_single_thread_noise_delays_at_most_one(self, nthreads, comp,
                                                    pct, seed):
        rng = np.random.default_rng(seed)
        times = SingleThreadNoise(pct).compute_times(rng, nthreads, comp)
        assert np.sum(times > comp) <= 1
        if nthreads > 1:
            # At least one thread always runs clean.
            assert times.min() == pytest.approx(comp)

    @given(st.integers(min_value=1, max_value=128),
           st.floats(min_value=1e-6, max_value=1.0),
           st.floats(min_value=0.0, max_value=500.0),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=100)
    def test_gaussian_noise_non_negative(self, nthreads, comp, pct, seed):
        rng = np.random.default_rng(seed)
        times = GaussianNoise(pct).compute_times(rng, nthreads, comp)
        assert np.all(times >= 0.0)


class TestMetricProperties:
    timelines = st.builds(
        lambda preadys, durations, join, pt2pt: PartitionTimeline(
            message_bytes=1024,
            pready_times=preadys,
            arrival_times=[p + d for p, d in zip(preadys, durations)],
            join_time=join,
            pt2pt_time=pt2pt,
        ),
        preadys=st.lists(st.floats(min_value=0, max_value=10),
                         min_size=1, max_size=32),
        durations=st.lists(st.floats(min_value=1e-9, max_value=10),
                           min_size=32, max_size=32),
        join=st.floats(min_value=0, max_value=30),
        pt2pt=st.floats(min_value=1e-9, max_value=10),
    )

    @given(timelines)
    @settings(max_examples=200)
    def test_metric_invariants(self, tl):
        m = PtpMetrics.from_timeline(tl)
        assert m.overhead >= 0
        assert m.perceived_bandwidth > 0
        assert 0.0 <= m.early_bird_fraction <= 1.0
        assert m.application_availability <= 1.0
        # t_before + t_after partition the window around the join.
        assert tl.t_before_join <= tl.t_part + 1e-12
        assert tl.t_after_join >= 0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False),
                    min_size=1, max_size=200),
           st.floats(min_value=0.0, max_value=0.49))
    @settings(max_examples=100)
    def test_pruned_mean_within_range(self, values, trim):
        mean = pruned_mean(values, trim)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False),
                    min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_trim_is_subset_and_sorted(self, values):
        trimmed = trim_outliers(values, 0.05)
        assert len(trimmed) >= 1
        assert list(trimmed) == sorted(trimmed)


class TestProxyProperties:
    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=200)
    def test_process_grid_factorizes(self, n):
        px, py = process_grid(n)
        assert px * py == n
        assert px <= py

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=1.0, max_value=1000.0))
    @settings(max_examples=200)
    def test_projection_bounds(self, fraction, speedup):
        s = project_speedup(fraction, speedup)
        assert 1.0 <= s <= speedup + 1e-9


class TestBarrierProperties:
    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_barrier_rounds_never_interleave(self, parties, rounds, seed):
        sim = Simulator()
        bar = SimBarrier(sim, parties, cost_per_party=0.0)
        rng = np.random.default_rng(seed)
        delays = rng.uniform(0.1, 1.0, size=(parties, rounds))
        leave_times = {r: [] for r in range(rounds)}

        def member(tid):
            for r in range(rounds):
                yield sim.timeout(float(delays[tid, r]))
                yield from bar.wait()
                leave_times[r].append(sim.now)

        for tid in range(parties):
            sim.process(member(tid))
        sim.run()
        previous = -1.0
        for r in range(rounds):
            assert len(set(leave_times[r])) == 1
            assert leave_times[r][0] > previous
            previous = leave_times[r][0]
