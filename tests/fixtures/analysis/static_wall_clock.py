"""Static fixture: wall-clock read inside simulated code (SIM101)."""

import time


def sample_phase():
    start = time.time()  # hazard: host wall clock, not sim.now
    return start
