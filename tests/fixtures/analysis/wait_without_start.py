"""Fixture: wait() on a request that was never started (rule PART003)."""

NRANKS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 2)
        yield from ps.wait(main)  # no start() before this wait
        return None
    yield from comm.precv_init(main, 0, 7, 4096, 2)
    return None
