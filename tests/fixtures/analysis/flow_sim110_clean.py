"""Fixture: every pready index provably inside [0, partitions) — clean."""

NRANKS = 2
PARTITIONS = 4


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, PARTITIONS)
        yield from ps.start(main)
        for p in range(PARTITIONS):
            yield from ps.pready(main, p)
        yield from ps.wait(main)
        return None
    pr = yield from comm.precv_init(main, 0, 7, 4096, PARTITIONS)
    yield from pr.start(main)
    yield from pr.wait(main)
    return None
