"""Static fixture: blocking on a resource while holding a mutex (SIM106)."""


def critical(sim, lock, nic):
    yield from lock.acquire()
    yield nic.request()  # hazard: blocks while the mutex is held
    nic.release()
    lock.release()
