"""Static fixture: mutable default argument (SIM104)."""


def collect(sample, sink=[]):  # hazard: shared across calls
    sink.append(sample)
    return sink
