"""Fixture: wait() on a partitioned request that was never started (SIM113)."""

NRANKS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 2)
        yield from ps.wait(main)  # no start(): the violation
        return None
    yield from comm.precv_init(main, 0, 7, 4096, 2)
    return None
