"""Fixture: a psend_init with no matching precv_init (rule FIN002)."""

NRANKS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        yield from comm.psend_init(main, 1, 7, 4096, 2)
        return None                        # peer never posts precv_init
    yield from ctx.elapse(0.0)
    return None
