"""Fixture: send buffer written after its partition was readied (SIM115)."""

NRANKS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 2)
        yield from ps.start(main)
        ps.note_buffer_write(0)
        ps.note_buffer_write(1)
        yield from ps.pready_range(main, 0, 1)
        ps.note_buffer_write(0)  # partition 0 already in flight: the violation
        yield from ps.wait(main)
        return None
    pr = yield from comm.precv_init(main, 0, 7, 4096, 2)
    yield from pr.start(main)
    yield from pr.wait(main)
    return None
