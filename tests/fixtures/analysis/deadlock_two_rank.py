"""Fixture: two ranks take two shared locks in opposite order (RES001)."""

from repro.sim import Mutex

NRANKS = 2


def _locks(ctx):
    locks = getattr(ctx.cluster, "_fixture_locks", None)
    if locks is None:
        locks = (Mutex(ctx.sim, name="lockA"), Mutex(ctx.sim, name="lockB"))
        ctx.cluster._fixture_locks = locks
    return locks


def program(ctx):
    lock_a, lock_b = _locks(ctx)
    first, second = ((lock_a, lock_b) if ctx.rank == 0
                     else (lock_b, lock_a))
    yield from first.acquire()
    yield from ctx.elapse(1e-4)            # let the peer take its first lock
    yield from second.acquire()            # classic lock-order inversion
    second.release()
    first.release()
    return None
