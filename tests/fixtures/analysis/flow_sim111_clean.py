"""Fixture: the early-bird loop split — two range() loops covering
[0, PARTITIONS) between them.  The analyzer must see that the halves
compose to full coverage and stay silent (clean)."""

NRANKS = 2
PARTITIONS = 8
SPLIT = 4


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, PARTITIONS)
        yield from ps.start(main)
        for p in range(0, SPLIT):  # early-bird half: overlap with compute
            yield from ps.pready(main, p)
        yield from main.compute(0.001)
        for p in range(SPLIT, PARTITIONS):  # trailing half
            yield from ps.pready(main, p)
        yield from ps.wait(main)
        return None
    pr = yield from comm.precv_init(main, 0, 7, 4096, PARTITIONS)
    yield from pr.start(main)
    yield from pr.wait(main)
    return None
