"""Fixture: disjoint pready_range halves, plus a fresh epoch re-readying
the same indices after start() resets the ready set — clean."""

NRANKS = 2
EPOCHS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 4)
        for _ in range(EPOCHS):
            yield from ps.start(main)
            yield from ps.pready_range(main, 0, 1)  # inclusive [0, 1]
            yield from ps.pready_range(main, 2, 3)  # inclusive [2, 3]
            yield from ps.wait(main)
        return None
    pr = yield from comm.precv_init(main, 0, 7, 4096, 4)
    for _ in range(EPOCHS):
        yield from pr.start(main)
        yield from pr.wait(main)
    return None
