"""Static fixture: event recording that bypasses repro.obs (SIM107)."""


def measure_partitions(ctx, ps, n):
    stamps = [0.0] * n
    for p in range(n):
        stamps[p] = ctx.sim.now  # hazard: hand-built timestamp table
        yield from ps.pready(ctx.main, p)
    return stamps
