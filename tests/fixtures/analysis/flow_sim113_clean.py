"""Fixture: the canonical start → pready* → wait epoch ordering — clean."""

NRANKS = 2
EPOCHS = 3


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 2)
        for _ in range(EPOCHS):
            yield from ps.start(main)
            for p in range(2):
                yield from ps.pready(main, p)
            yield from ps.wait(main)
        return None
    pr = yield from comm.precv_init(main, 0, 7, 4096, 2)
    for _ in range(EPOCHS):
        yield from pr.start(main)
        yield from pr.wait(main)
    return None
