"""Fixture: send buffer written after its pready (rule PART004).

The run itself completes — the race is invisible to the runtime's own
state machine and only the happens-before tracker sees it.
"""

NRANKS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 2)
        yield from ps.start(main)
        ps.note_buffer_write(0)            # fill partition 0 ...
        yield from ps.pready(main, 0)      # ... hand it to MPI ...
        ps.note_buffer_write(0)            # ... then scribble on it: race
        ps.note_buffer_write(1)
        yield from ps.pready(main, 1)
        yield from ps.wait(main)
        return None
    pr = yield from comm.precv_init(main, 0, 7, 4096, 2)
    yield from pr.start(main)
    yield from pr.wait(main)
    return None
