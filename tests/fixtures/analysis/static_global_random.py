"""Static fixture: module-level RNG instead of repro.sim.rng (SIM102)."""

import random  # hazard: global, seed-shared RNG state


def jitter(scale):
    return random.uniform(0.0, scale)
