"""Static fixture: iteration over a set display (SIM103)."""


def visit(handler):
    for rank in {3, 1, 2}:  # hazard: hash-ordered iteration
        handler(rank)
