"""Static fixture: hand-rolled cache key that ignores the fault plan."""

import hashlib


def experiment_cache_key(cfg):
    # Enumerates "the fields that matter" by hand — and forgets that a
    # fault plan changes every simulated result.
    blob = (f"{cfg.message_bytes}|{cfg.partitions}|{cfg.seed}|"
            f"{cfg.impl}|{cfg.iterations}")
    return hashlib.sha256(blob.encode()).hexdigest()


def safe_fingerprint(cfg):
    # Reads .faults alongside the enumerated fields: not flagged.
    blob = (f"{cfg.message_bytes}|{cfg.partitions}|{cfg.seed}|"
            f"{cfg.faults}")
    return hashlib.sha256(blob.encode()).hexdigest()


def generic_fingerprint(cfg):
    # Generic canonicalization (no per-field enumeration): not flagged.
    return hashlib.sha256(repr(cfg).encode()).hexdigest()
