"""Fixture: partition readied on one branch but not the joining path (SIM111)."""

NRANKS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 2)
        yield from ps.start(main)
        if ctx.nranks > 1:
            yield from ps.pready(main, 0)
            yield from ps.pready(main, 1)
        else:
            yield from ps.pready(main, 0)  # partition 1 skipped on this path
        yield from ps.wait(main)
        return None
    pr = yield from comm.precv_init(main, 0, 7, 4096, 2)
    yield from pr.start(main)
    yield from pr.wait(main)
    return None
