"""Fixture: receive buffer read before the partition arrived (PART005).

The run completes; only the happens-before tracker flags the read.
"""

NRANKS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 2)
        yield from ps.start(main)
        yield from ctx.elapse(1e-3)        # receiver reads before this
        yield from ps.pready(main, 0)
        yield from ps.pready(main, 1)
        yield from ps.wait(main)
        return None
    pr = yield from comm.precv_init(main, 0, 7, 4096, 2)
    yield from pr.start(main)
    pr.note_buffer_read(0)                 # nothing has arrived yet: race
    yield from pr.wait(main)
    pr.note_buffer_read(0)                 # after wait: fine
    return None
