"""Static fixture: bare value yielded from a process generator (SIM105)."""


def process(sim, period):
    while True:
        yield sim.timeout(period)
        yield 42  # hazard: not an Event; the kernel cannot wait on it
