"""Fixture: a correct multi-epoch partitioned exchange — zero findings."""

NRANKS = 2
EPOCHS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 2)
        for _ in range(EPOCHS):
            yield from ps.start(main)
            for p in range(2):
                ps.note_buffer_write(p)
                yield from ps.pready(main, p)
            yield from ps.wait(main)
        return ps.epoch
    pr = yield from comm.precv_init(main, 0, 7, 4096, 2)
    for _ in range(EPOCHS):
        yield from pr.start(main)
        yield from pr.wait(main)
        for p in range(2):
            pr.note_buffer_read(p)
    return pr.arrived_count
