"""Fixture: the same partition readied twice in one epoch (SIM112)."""

NRANKS = 2


def program(ctx):
    comm, main = ctx.comm, ctx.main
    if ctx.rank == 0:
        ps = yield from comm.psend_init(main, 1, 7, 4096, 2)
        yield from ps.start(main)
        yield from ps.pready(main, 0)
        yield from ps.pready(main, 0)  # second ready: the violation
        yield from ps.pready(main, 1)
        yield from ps.wait(main)
        return None
    pr = yield from comm.precv_init(main, 0, 7, 4096, 2)
    yield from pr.start(main)
    yield from pr.wait(main)
    return None
