"""Static fixture: hazard-free simulated-process code — zero findings."""


def process(sim, rng, period):
    ranks = sorted({3, 1, 2})
    while True:
        yield sim.timeout(period * rng.uniform(0.9, 1.1))
        for rank in ranks:
            yield sim.timeout(rank * 1e-9)
