"""Fault injection (``repro.faults``): plans, retry transport, outcomes.

Covers the fault-plan dataclasses and spec grammar, the ACK/retransmit
transport under a lossy fabric (payload delivery, duplicate suppression,
retry budget), graceful degradation of trials (fail-stop, deadline), and
the determinism guarantees: a fault plan is part of the cache
fingerprint, and serial / parallel / cached executions of a faulty
configuration remain bit-identical.
"""

import pytest

from repro.core import (PtpBenchmarkConfig, config_fingerprint,
                        fault_table, result_from_dict, result_to_dict,
                        run_cells, run_ptp_benchmark, run_ptp_trial,
                        sweep_ptp)
from repro.errors import ConfigurationError
from repro.faults import (DegradeWindow, FailStop, FaultOutcome, FaultPlan,
                          RetryPolicy, parse_fault_spec)
from repro.mpi import Cluster
from repro.obs import MemorySink

#: A quick one-cell config the fault trials build on.
QUICK = dict(message_bytes=4096, partitions=4, compute_seconds=1e-4,
             iterations=2, warmup=0)

#: A plan lossy enough to force retransmits at QUICK's traffic volume.
LOSSY = FaultPlan(drop_probability=0.2)


def _config(**overrides):
    kwargs = dict(QUICK)
    kwargs.update(overrides)
    return PtpBenchmarkConfig(**kwargs)


class TestFaultPlanValidation:
    def test_clean_plan_is_inactive(self):
        plan = FaultPlan()
        assert not plan.active
        assert not plan.lossy
        assert plan.describe() == "clean"

    def test_drop_probability_bounds(self):
        FaultPlan(drop_probability=0.999)
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_probability=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_probability=-0.1)

    def test_degrade_window_validation(self):
        with pytest.raises(ConfigurationError):
            DegradeWindow(start=2.0, end=1.0)
        with pytest.raises(ConfigurationError):
            DegradeWindow(start=0.0, end=1.0, bandwidth_scale=0.0)
        with pytest.raises(ConfigurationError):
            DegradeWindow(start=0.0, end=1.0, latency_scale=0.5)

    def test_degrade_at_composes_overlapping_windows(self):
        plan = FaultPlan(degrade_windows=(
            DegradeWindow(0.0, 2.0, bandwidth_scale=0.5),
            DegradeWindow(1.0, 3.0, latency_scale=4.0),
        ))
        assert plan.degrade_at(0.5) == (0.5, 1.0)
        assert plan.degrade_at(1.5) == (0.5, 4.0)
        assert plan.degrade_at(2.5) == (1.0, 4.0)
        assert plan.degrade_at(5.0) == (1.0, 1.0)

    def test_stall_is_phase_aligned(self):
        plan = FaultPlan(stall_period=1.0, stall_duration=0.25)
        assert plan.stall_delay(0.1) == pytest.approx(0.15)
        assert plan.stall_delay(0.5) == 0.0
        assert plan.stall_delay(2.2) == pytest.approx(0.05)
        with pytest.raises(ConfigurationError):
            FaultPlan(stall_period=1.0, stall_duration=1.0)

    def test_slowdown_validation_and_lookup(self):
        plan = FaultPlan(rank_slowdown=((1, 2.5),))
        assert plan.slowdown_for(1) == 2.5
        assert plan.slowdown_for(0) == 1.0
        with pytest.raises(ConfigurationError):
            FaultPlan(rank_slowdown=((0, 0.5),))
        with pytest.raises(ConfigurationError):
            FaultPlan(rank_slowdown=((0, 2.0), (0, 3.0)))

    def test_retry_policy_backoff_caps(self):
        policy = RetryPolicy(ack_timeout=1e-5, backoff_factor=2.0,
                             max_backoff=4e-5)
        assert policy.timeout_after(0) == pytest.approx(1e-5)
        assert policy.timeout_after(1) == pytest.approx(2e-5)
        assert policy.timeout_after(10) == pytest.approx(4e-5)

    def test_cluster_rejects_out_of_range_fault_ranks(self):
        with pytest.raises(ConfigurationError):
            Cluster(nranks=2, faults=FaultPlan(
                fail_stop=FailStop(rank=5, time=1.0)))
        with pytest.raises(ConfigurationError):
            Cluster(nranks=2, faults=FaultPlan(rank_slowdown=((7, 2.0),)))


class TestFaultSpecGrammar:
    def test_full_spec_round_trip(self):
        plan = parse_fault_spec(
            "drop=0.05,degrade=0:1:0.5:2,stall=0.01/0.001,slow=1:3,"
            "failstop=0@2.5,deadline=9,ack_timeout=2e-5,backoff=3,"
            "max_backoff=0.01,retries=4")
        assert plan.drop_probability == 0.05
        assert plan.degrade_windows == (
            DegradeWindow(0.0, 1.0, bandwidth_scale=0.5, latency_scale=2.0),)
        assert plan.stall_period == 0.01
        assert plan.stall_duration == 0.001
        assert plan.rank_slowdown == ((1, 3.0),)
        assert plan.fail_stop == FailStop(rank=0, time=2.5)
        assert plan.deadline == 9.0
        assert plan.retry == RetryPolicy(ack_timeout=2e-5, backoff_factor=3.0,
                                         max_backoff=0.01, max_retries=4)

    @pytest.mark.parametrize("bad", [
        "", "drop", "drop=x", "unknown=1", "drop=0.5,drop=0.5",
        "failstop=1", "stall=0.5", "degrade=1:2",
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(bad)

    def test_grammar_text_available(self):
        assert "drop=P" in parse_fault_spec.GRAMMAR


class TestLossyTransport:
    def _run_payload(self, nbytes, plan, seed=2):
        """One send/recv under ``plan``; returns (received, cluster)."""
        got = {}

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(ctx.main, 1, 5, nbytes,
                                         payload=("hello", nbytes))
            else:
                req = yield from ctx.comm.irecv(ctx.main, 0, 5, nbytes)
                yield req.wait()
                got["payload"] = req.status.payload

        cluster = Cluster(nranks=2, seed=seed, faults=plan)
        mem = MemorySink()
        cluster.obs.attach(mem, ("fault.*", "retry.*"))
        cluster.run(program)
        return got.get("payload"), cluster, mem

    def test_eager_payload_survives_drops(self):
        # High loss on a small (eager) message: the payload still lands
        # intact, and the retransmit path provably fired.
        plan = FaultPlan(drop_probability=0.4)
        payload, cluster, mem = self._run_payload(1024, plan)
        assert payload == ("hello", 1024)
        stats = cluster.fault_stats
        assert stats.drops > 0
        assert stats.retransmits > 0
        assert stats.abandoned == 0
        assert mem.filter("retry.retransmit")

    def test_rendezvous_payload_survives_drops(self):
        # Above the eager threshold the RTS/CTS handshake frames are
        # droppable too; retry must recover the whole exchange.
        plan = FaultPlan(drop_probability=0.3)
        payload, cluster, _ = self._run_payload(64 * 1024, plan, seed=5)
        assert payload == ("hello", 64 * 1024)
        assert cluster.fault_stats.drops > 0

    def test_duplicates_are_suppressed_not_redelivered(self):
        # Drive loss until a duplicate delivery happens (lost ACK path):
        # the receiver re-ACKs but hands the message up exactly once.
        for seed in range(20):
            payload, cluster, mem = self._run_payload(
                1024, FaultPlan(drop_probability=0.4), seed=seed)
            assert payload == ("hello", 1024)
            if cluster.fault_stats.duplicates:
                assert mem.filter("fault.duplicate")
                return
        pytest.fail("no seed in 0..19 produced a duplicate delivery")

    def test_clean_plan_changes_nothing(self):
        # A present-but-empty plan must not perturb the simulation.
        clean, _, _ = self._run_payload(1024, None)
        with_plan, cluster, mem = self._run_payload(1024, FaultPlan())
        assert clean == with_plan
        assert cluster.fault_stats.drops == 0
        assert len(mem) == 0


class TestGracefulDegradation:
    def test_fail_stop_yields_outcome_not_crash(self):
        # Rank 1 dies mid-way through the first compute phase, so the
        # sender's partitioned traffic can never complete.
        config = _config(compute_seconds=1e-3, faults=FaultPlan(
            fail_stop=FailStop(rank=1, time=5e-4), deadline=0.05))
        result = run_ptp_benchmark(config)
        outcome = result.fault_outcome
        assert outcome is not None
        assert not outcome.delivered
        assert outcome.fail_stops == 1
        assert "fail-stop" in outcome.reason
        assert "ABANDONED" in outcome.describe()

    def test_deadline_yields_outcome_not_crash(self):
        config = _config(compute_seconds=1e-2,
                         faults=FaultPlan(deadline=1e-3))
        result = run_ptp_benchmark(config)
        assert not result.fault_outcome.delivered
        assert "deadline" in result.fault_outcome.reason
        assert result.samples == []

    def test_lossy_trial_delivers_with_outcome(self):
        result = run_ptp_benchmark(_config(faults=LOSSY))
        assert result.fault_outcome.delivered
        assert result.fault_outcome.retransmits > 0
        assert len(result.samples) == QUICK["iterations"]

    def test_retry_events_flow_through_trial_sinks(self):
        mem = MemorySink()
        result, _ = run_ptp_trial(_config(faults=LOSSY),
                                  sinks=[(mem, ("retry.*", "fault.*"))])
        assert mem.filter("fault.drop")
        assert mem.filter("retry.retransmit")
        assert result.fault_outcome.drops == len(mem.filter("fault.drop"))


class TestDeterminismAndCaching:
    def test_fault_plan_enters_fingerprint(self):
        clean = _config()
        faulty = _config(faults=LOSSY)
        assert config_fingerprint(clean) != config_fingerprint(faulty)
        assert config_fingerprint(faulty) == config_fingerprint(
            _config(faults=FaultPlan(drop_probability=0.2)))
        assert config_fingerprint(faulty) != config_fingerprint(
            _config(faults=FaultPlan(drop_probability=0.3)))

    def test_faulty_trial_is_bit_identical_on_rerun(self):
        a = run_ptp_benchmark(_config(faults=LOSSY))
        b = run_ptp_benchmark(_config(faults=LOSSY))
        assert a.event_digest == b.event_digest
        assert a.fault_outcome == b.fault_outcome

    def test_serial_parallel_cached_agree_under_faults(self, tmp_path):
        cells = [_config(faults=LOSSY),
                 _config(message_bytes=8192, faults=LOSSY)]
        serial, _ = run_cells(cells, jobs=1)
        parallel, _ = run_cells(cells, jobs=2, cache=tmp_path / "cache")
        cached, stats = run_cells(cells, jobs=1, cache=tmp_path / "cache")
        assert stats.executed == 0
        for s, p, c in zip(serial, parallel, cached):
            assert s.event_digest == p.event_digest == c.event_digest
            assert s.fault_outcome == p.fault_outcome == c.fault_outcome

    def test_outcome_round_trips_through_persistence(self):
        result = run_ptp_benchmark(_config(faults=LOSSY))
        reloaded = result_from_dict(result_to_dict(result))
        assert reloaded.fault_outcome == result.fault_outcome
        assert reloaded.event_digest == result.event_digest

    def test_outcome_dict_filters_unknown_keys(self):
        data = FaultOutcome(delivered=True, drops=3).to_dict()
        data["later_field"] = "ignored"
        assert FaultOutcome.from_dict(data).drops == 3


class TestReporting:
    def test_fault_table_lists_faulty_cells(self):
        base = _config(faults=LOSSY)
        sweep = sweep_ptp(base, [4096, 8192], [2], derive_seeds=True)
        table = fault_table(sweep)
        assert table is not None
        assert "fault outcomes" in table
        assert "4KiB" in table and "8KiB" in table

    def test_fault_table_none_for_clean_sweeps(self):
        sweep = sweep_ptp(_config(), [4096], [2])
        assert fault_table(sweep) is None
        assert sweep.fault_points() == []
