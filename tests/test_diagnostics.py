"""Cluster diagnostics: counters and report rendering."""

import pytest

from repro.mpi import Cluster, cluster_report, collect_diagnostics


def _loaded_cluster():
    def program(ctx):
        if ctx.rank == 0:
            def worker(tc):
                yield from ctx.comm.send(tc, 1, tc.thread_id, 1 << 16)

            team = yield from ctx.fork(4, worker)
            yield from team.join()
        else:
            yield ctx.sim.timeout(1e-4)  # force the unexpected path
            for tag in range(4):
                yield from ctx.comm.recv(ctx.main, 0, tag, 1 << 16)

    cluster = Cluster(nranks=2)
    cluster.run(program)
    return cluster


class TestCollect:
    def test_one_entry_per_rank(self):
        diags = collect_diagnostics(_loaded_cluster())
        assert [d.rank for d in diags] == [0, 1]

    def test_sender_lock_contention_recorded(self):
        sender = collect_diagnostics(_loaded_cluster())[0]
        assert sender.lock_acquisitions >= 4
        assert sender.lock_contention_ratio > 0
        assert sender.lock_wait_time > 0
        assert sender.lock_hold_time > 0

    def test_nic_accounting(self):
        sender, receiver = collect_diagnostics(_loaded_cluster())
        # 4 rendezvous sends: 4 RTS + 4 RDATA frames from the sender.
        assert sender.nic_messages == 8
        assert sender.nic_bytes == 4 * (1 << 16)
        assert sender.nic_busy_time > 0
        # The receiver only returned 4 CTS control frames.
        assert receiver.nic_messages == 4

    def test_matching_counters(self):
        receiver = collect_diagnostics(_loaded_cluster())[1]
        # RTS frames landed before the receives posted (unexpected path).
        assert receiver.unexpected_matches == 4
        assert receiver.max_unexpected_depth >= 1
        assert receiver.mean_scan_length > 0

    def test_report_renders_all_ranks(self):
        cluster = _loaded_cluster()
        text = cluster_report(cluster)
        assert "cluster diagnostics" in text
        assert "lock acq" in text
        lines = text.splitlines()
        assert len(lines) == 3 + cluster.nranks  # title + header + sep

    def test_idle_cluster_reports_zeros(self):
        cluster = Cluster(nranks=2)

        def program(ctx):
            yield ctx.sim.timeout(1e-6)

        cluster.run(program)
        for d in collect_diagnostics(cluster):
            assert d.lock_acquisitions == 0
            assert d.nic_messages == 0
            assert d.mean_scan_length == 0.0


class TestGranularity:
    def test_threads_property(self):
        from repro.core import PtpBenchmarkConfig
        cfg = PtpBenchmarkConfig(message_bytes=1 << 20, partitions=32,
                                 partitions_per_thread=4)
        assert cfg.threads == 8

    def test_indivisible_rejected(self):
        from repro.core import PtpBenchmarkConfig
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="multiple"):
            PtpBenchmarkConfig(message_bytes=1 << 20, partitions=10,
                               partitions_per_thread=4)

    def test_multi_partition_threads_deliver_everything(self):
        from repro.core import PtpBenchmarkConfig, run_ptp_benchmark
        cfg = PtpBenchmarkConfig(message_bytes=1 << 18, partitions=16,
                                 partitions_per_thread=4,
                                 compute_seconds=1e-3, iterations=2,
                                 warmup=1)
        result = run_ptp_benchmark(cfg)
        assert result.samples[0].timeline.partitions == 16
        assert result.overhead.mean > 0

    def test_finer_partitions_cost_more_overhead(self):
        from repro.core import PtpBenchmarkConfig, run_ptp_benchmark

        def overhead(partitions, ppt):
            cfg = PtpBenchmarkConfig(message_bytes=1 << 16,
                                     partitions=partitions,
                                     partitions_per_thread=ppt,
                                     compute_seconds=1e-3,
                                     iterations=2, warmup=1)
            return run_ptp_benchmark(cfg).overhead.mean

        # Same 4 threads, 4 vs 32 partitions: finer costs more.
        assert overhead(32, 8) > overhead(4, 1)
