"""The shipped examples: importability and (for the fast ones) execution."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [p.stem for p in sorted(EXAMPLES.glob("*.py"))]


class TestExamples:
    def test_at_least_the_required_three_exist(self):
        assert "quickstart" in ALL_EXAMPLES
        assert len(ALL_EXAMPLES) >= 3

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = _load(name)
        assert callable(module.main)
        assert module.__doc__  # every example documents itself

    def test_quickstart_runs(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "overhead" in out and "early-bird" in out

    def test_gpu_stream_runs(self, capsys):
        _load("gpu_stream_partitioned").main()
        out = capsys.readouterr().out
        assert "device-triggered" in out

    def test_noise_study_runs(self, capsys):
        _load("noise_study").main()
        out = capsys.readouterr().out
        assert "uniform" in out and "gaussian" in out
