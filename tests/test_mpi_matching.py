"""Unit tests for the tag-matching engine."""

from repro.mpi import ANY_SOURCE, ANY_TAG, Envelope, MatchingEngine


class TestEnvelope:
    def test_exact_match(self):
        env = Envelope(source=1, tag=5, comm_id=0)
        assert env.matches_pattern(1, 5, 0)
        assert not env.matches_pattern(2, 5, 0)
        assert not env.matches_pattern(1, 6, 0)
        assert not env.matches_pattern(1, 5, 1)

    def test_wildcards(self):
        env = Envelope(source=3, tag=9, comm_id=0)
        assert env.matches_pattern(ANY_SOURCE, 9, 0)
        assert env.matches_pattern(3, ANY_TAG, 0)
        assert env.matches_pattern(ANY_SOURCE, ANY_TAG, 0)

    def test_comm_id_never_wildcards(self):
        env = Envelope(source=3, tag=9, comm_id=1)
        assert not env.matches_pattern(ANY_SOURCE, ANY_TAG, 0)


class TestMatchingEngine:
    def test_arrival_matches_posted_in_fifo_order(self):
        eng = MatchingEngine()
        eng.post_recv("req_a", source=0, tag=1, comm_id=0)
        eng.post_recv("req_b", source=0, tag=1, comm_id=0)
        entry, scanned = eng.match_arrival(Envelope(0, 1, 0))
        assert entry.request == "req_a"
        assert scanned == 1
        entry, _ = eng.match_arrival(Envelope(0, 1, 0))
        assert entry.request == "req_b"

    def test_scan_cost_counts_skipped_entries(self):
        eng = MatchingEngine()
        eng.post_recv("other", source=0, tag=99, comm_id=0)
        eng.post_recv("target", source=0, tag=1, comm_id=0)
        entry, scanned = eng.match_arrival(Envelope(0, 1, 0))
        assert entry.request == "target"
        assert scanned == 2
        assert eng.stats.elements_scanned == 2

    def test_unmatched_arrival_returns_none(self):
        eng = MatchingEngine()
        entry, scanned = eng.match_arrival(Envelope(0, 1, 0))
        assert entry is None
        assert scanned == 0

    def test_unexpected_queue_fifo(self):
        eng = MatchingEngine()
        eng.store_unexpected("f1", Envelope(0, 1, 0), now=1.0)
        eng.store_unexpected("f2", Envelope(0, 1, 0), now=2.0)
        hit, _ = eng.find_unexpected(source=0, tag=1, comm_id=0)
        assert hit.frame == "f1"
        hit, _ = eng.find_unexpected(source=0, tag=1, comm_id=0)
        assert hit.frame == "f2"
        hit, _ = eng.find_unexpected(source=0, tag=1, comm_id=0)
        assert hit is None

    def test_wildcard_posted_recv_matches_any_source(self):
        eng = MatchingEngine()
        eng.post_recv("wild", source=ANY_SOURCE, tag=ANY_TAG, comm_id=0)
        entry, _ = eng.match_arrival(Envelope(7, 3, 0))
        assert entry.request == "wild"

    def test_cancel_posted(self):
        eng = MatchingEngine()
        entry = eng.post_recv("req", source=0, tag=1, comm_id=0)
        assert eng.cancel_posted(entry)
        assert not eng.cancel_posted(entry)
        assert eng.match_arrival(Envelope(0, 1, 0))[0] is None

    def test_depth_tracking(self):
        eng = MatchingEngine()
        for i in range(3):
            eng.post_recv(f"r{i}", source=0, tag=i, comm_id=0)
        assert eng.posted_depth == 3
        assert eng.stats.max_posted_depth == 3
        eng.store_unexpected("f", Envelope(0, 9, 0), now=0.0)
        assert eng.unexpected_depth == 1
        assert eng.stats.max_unexpected_depth == 1

    def test_match_stats_counters(self):
        eng = MatchingEngine()
        eng.post_recv("r", source=0, tag=1, comm_id=0)
        eng.match_arrival(Envelope(0, 1, 0))
        assert eng.stats.posted_matches == 1
        eng.store_unexpected("f", Envelope(0, 2, 0), now=0.0)
        eng.find_unexpected(0, 2, 0)
        assert eng.stats.unexpected_matches == 1
