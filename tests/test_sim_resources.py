"""Unit tests for resources, mutexes (with stats), and stores."""

import pytest

from repro.errors import SimulationError
from repro.sim import Mutex, Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_grant_is_immediate_when_free(self, sim):
        res = Resource(sim, capacity=2)
        got = []

        def user():
            yield res.request()
            got.append(sim.now)

        sim.process(user())
        sim.process(user())
        sim.run()
        assert got == [0.0, 0.0]
        assert res.in_use == 2

    def test_fifo_queueing(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(name, hold):
            yield res.request()
            order.append((name, sim.now))
            yield sim.timeout(hold)
            res.release()

        for i in range(3):
            sim.process(user(f"u{i}", 2.0))
        sim.run()
        assert order == [("u0", 0.0), ("u1", 2.0), ("u2", 4.0)]

    def test_release_idle_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_release_hands_unit_to_waiter(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(1.0)
            res.release()

        def waiter():
            yield res.request()
            return sim.now

        sim.process(holder())
        w = sim.process(waiter())
        sim.run()
        assert w.value == 1.0
        assert res.in_use == 1  # waiter still holds

    def test_cancel_pending_request(self, sim):
        res = Resource(sim, capacity=1)
        res.request()  # grabs the unit
        pending = res.request()
        assert res.cancel(pending)
        assert res.queue_length == 0

    def test_cancel_granted_request_returns_false(self, sim):
        res = Resource(sim, capacity=1)
        granted = res.request()
        assert not res.cancel(granted)


class TestMutex:
    def test_uncontended_acquisition_has_no_wait(self, sim):
        m = Mutex(sim)

        def user():
            yield from m.acquire()
            yield sim.timeout(1.0)
            m.release()

        sim.process(user())
        sim.run()
        assert m.stats.acquisitions == 1
        assert m.stats.contended_acquisitions == 0
        assert m.stats.total_wait_time == 0.0
        assert m.stats.total_hold_time == pytest.approx(1.0)

    def test_contention_statistics(self, sim):
        m = Mutex(sim)

        def user():
            yield from m.acquire()
            yield sim.timeout(1.0)
            m.release()

        for _ in range(4):
            sim.process(user())
        sim.run()
        assert m.stats.acquisitions == 4
        assert m.stats.contended_acquisitions == 3
        assert m.stats.total_wait_time == pytest.approx(1 + 2 + 3)
        assert m.stats.contention_ratio == pytest.approx(0.75)
        assert m.stats.max_queue_length >= 1

    def test_mean_wait_time_zero_when_unused(self, sim):
        assert Mutex(sim).stats.mean_wait_time == 0.0

    def test_locked_property(self, sim):
        m = Mutex(sim)
        states = []

        def user():
            states.append(m.locked)
            yield from m.acquire()
            states.append(m.locked)
            m.release()
            states.append(m.locked)

        sim.process(user())
        sim.run()
        assert states == [False, True, False]


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = []

        def consumer():
            got.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            got.append(((yield store.get()), sim.now))

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 3.0)]

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_fifo_getter_order(self, sim):
        store = Store(sim)
        got = []

        def consumer(name):
            got.append((name, (yield store.get())))

        sim.process(consumer("first"))
        sim.process(consumer("second"))

        def producer():
            yield sim.timeout(1.0)
            store.put("a")
            store.put("b")

        sim.process(producer())
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_len(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
