"""The micro-benchmark runner: config validation, measurement integrity."""

import pytest

from repro.core import (COLD, HOT, PAPER_MESSAGE_SIZES,
                        PAPER_PARTITION_COUNTS, PtpBenchmarkConfig,
                        run_ptp_benchmark)
from repro.errors import ConfigurationError
from repro.noise import NoNoise, SingleThreadNoise, UniformNoise
from repro.partitioned import IMPL_NATIVE


class TestConfig:
    def test_defaults_are_sane(self):
        cfg = PtpBenchmarkConfig(message_bytes=4096, partitions=4)
        assert cfg.cache == HOT
        assert cfg.partition_bytes == 1024
        assert cfg.total_iterations == cfg.warmup + cfg.iterations

    def test_paper_grids(self):
        assert PAPER_MESSAGE_SIZES[0] == 64
        assert PAPER_MESSAGE_SIZES[-1] == 16 * 1024 * 1024
        assert PAPER_PARTITION_COUNTS == (1, 2, 4, 8, 16, 32)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PtpBenchmarkConfig(message_bytes=0, partitions=1)
        with pytest.raises(ConfigurationError):
            PtpBenchmarkConfig(message_bytes=2, partitions=4)
        with pytest.raises(ConfigurationError):
            PtpBenchmarkConfig(message_bytes=64, partitions=1,
                               cache="lukewarm")
        with pytest.raises(ConfigurationError):
            PtpBenchmarkConfig(message_bytes=64, partitions=1, iterations=0)
        with pytest.raises(ConfigurationError):
            PtpBenchmarkConfig(message_bytes=64, partitions=1, warmup=-1)
        with pytest.raises(ConfigurationError):
            PtpBenchmarkConfig(message_bytes=64, partitions=1,
                               compute_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            PtpBenchmarkConfig(message_bytes=64, partitions=1, impl="x")

    def test_with_overrides(self):
        base = PtpBenchmarkConfig(message_bytes=64, partitions=1)
        alt = base.with_overrides(partitions=2, cache=COLD)
        assert alt.partitions == 2
        assert alt.cache == COLD
        assert base.partitions == 1

    def test_label_mentions_key_fields(self):
        cfg = PtpBenchmarkConfig(message_bytes=4096, partitions=4,
                                 noise=UniformNoise(4.0))
        label = cfg.label()
        assert "4096" in label and "uniform" in label


class TestRunner:
    def test_sample_count_matches_iterations(self, quick_config):
        result = run_ptp_benchmark(quick_config)
        assert len(result.samples) == quick_config.iterations

    def test_timeline_sanity(self, quick_config):
        result = run_ptp_benchmark(quick_config)
        for sample in result.samples:
            tl = sample.timeline
            assert tl.partitions == quick_config.partitions
            assert tl.t_part > 0
            assert tl.pt2pt_time > 0
            assert tl.first_pready >= 0
            assert all(a >= p for p, a in zip(tl.pready_times,
                                              tl.arrival_times))

    def test_metrics_are_finite_and_positive(self, quick_config):
        result = run_ptp_benchmark(quick_config)
        assert result.overhead.mean > 0
        assert result.perceived_bandwidth.mean > 0
        assert 0 <= result.early_bird_fraction.mean <= 1
        assert result.application_availability.mean <= 1.0

    def test_determinism_same_seed(self, quick_config):
        a = run_ptp_benchmark(quick_config)
        b = run_ptp_benchmark(quick_config)
        assert a.overhead.mean == b.overhead.mean
        assert a.perceived_bandwidth.mean == b.perceived_bandwidth.mean

    def test_different_seeds_differ_under_noise(self, quick_config):
        noisy = quick_config.with_overrides(noise=UniformNoise(4.0))
        a = run_ptp_benchmark(noisy)
        b = run_ptp_benchmark(noisy.with_overrides(seed=99))
        assert a.perceived_bandwidth.mean != b.perceived_bandwidth.mean

    def test_single_partition_runs(self):
        cfg = PtpBenchmarkConfig(message_bytes=4096, partitions=1,
                                 compute_seconds=1e-4, iterations=2)
        result = run_ptp_benchmark(cfg)
        assert result.overhead.mean > 0

    def test_cold_cache_runs(self, quick_config):
        result = run_ptp_benchmark(quick_config.with_overrides(cache=COLD))
        assert result.overhead.mean > 0

    def test_native_impl_runs(self, quick_config):
        result = run_ptp_benchmark(
            quick_config.with_overrides(impl=IMPL_NATIVE))
        assert result.overhead.mean > 0

    def test_metric_summary_by_name(self, quick_config):
        result = run_ptp_benchmark(quick_config)
        assert result.metric_summary("overhead").mean == \
            result.overhead.mean
        with pytest.raises(ConfigurationError):
            result.metric_summary("latency")

    def test_common_random_numbers_align_join(self, quick_config):
        """With zero noise and zero compute variance, the partitioned
        phase's pready spread stays tiny (lock serialization only)."""
        cfg = quick_config.with_overrides(noise=NoNoise())
        result = run_ptp_benchmark(cfg)
        tl = result.samples[0].timeline
        spread = max(tl.pready_times) - min(tl.pready_times)
        assert spread < 1e-4  # well under the 1 ms compute

    def test_noise_stretches_pready_spread(self, quick_config):
        cfg = quick_config.with_overrides(
            noise=SingleThreadNoise(50.0), compute_seconds=0.01)
        result = run_ptp_benchmark(cfg)
        tl = result.samples[0].timeline
        spread = max(tl.pready_times) - min(tl.pready_times)
        assert spread > 0.004  # the 50% victim is ~5 ms late
