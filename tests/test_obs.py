"""Tests for the structured instrumentation layer (``repro.obs``).

Covers the schema/pattern resolution, record immutability, the bus
dispatch fast path, the built-in sinks, the streaming timeline builder's
error handling, exporter structure (including the Chrome trace format),
and end-to-end bit-identity of the runner's event stream.
"""

import io
import json

import pytest

from repro.core import PtpBenchmarkConfig, run_ptp_trial
from repro.errors import ConfigurationError, SimulationError
from repro.obs import (CounterSink, DigestSink, EventBus, EventRecord,
                       MemorySink, TimelineBuilder, canonical_line)
from repro.obs.export import (event_to_dict, to_chrome_trace, write_jsonl,
                              write_chrome_trace)
from repro.obs.schema import SCHEMA, EventSchema


def _schema():
    s = EventSchema()
    s.register("part.pready", ("rank", "partition"), doc="x")
    s.register("part.arrived", ("rank", "partition", "nbytes"), doc="x")
    s.register("nic.tx_start", ("rank", "dst"), doc="x")
    s.register("internal.ev", ("rank", "req"), internal=("req",), doc="x")
    return s


class TestSchema:
    def test_register_interns_dense_ids(self):
        s = _schema()
        assert [k.id for k in s.kinds()] == [0, 1, 2, 3]
        assert s.kind("part.arrived").fields == ("rank", "partition",
                                                 "nbytes")

    def test_duplicate_registration_rejected(self):
        s = _schema()
        with pytest.raises(ConfigurationError):
            s.register("part.pready", ("rank",))

    def test_internal_must_be_declared(self):
        s = EventSchema()
        with pytest.raises(ConfigurationError):
            s.register("x", ("a",), internal=("b",))

    def test_resolve_exact_wildcard_star(self):
        s = _schema()
        assert [k.name for k in s.resolve(["part.pready"])] == \
            ["part.pready"]
        assert [k.name for k in s.resolve(["part.*"])] == \
            ["part.pready", "part.arrived"]
        assert len(s.resolve(["*"])) == 4

    def test_resolve_dedupes_and_orders_by_id(self):
        s = _schema()
        kinds = s.resolve(["nic.tx_start", "part.*", "part.pready"])
        assert [k.name for k in kinds] == \
            ["part.pready", "part.arrived", "nic.tx_start"]

    def test_resolve_unknown_pattern_raises(self):
        s = _schema()
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            s.resolve(["part.typo"])
        with pytest.raises(ConfigurationError):
            s.resolve(["bogus.*"])

    def test_kind_is_immutable(self):
        kind = _schema().kind("part.pready")
        with pytest.raises(AttributeError):
            kind.name = "other"

    def test_wire_fields_exclude_internal(self):
        kind = _schema().kind("internal.ev")
        assert kind.wire_fields == ("rank",)
        assert kind.wire_values((3, object())) == (3,)

    def test_global_schema_has_part_and_bench_kinds(self):
        for name in ("part.init", "part.pready", "part.arrived",
                     "bench.part_begin", "bench.recv_complete",
                     "send.complete", "nic.tx_start"):
            assert name in SCHEMA


class TestEventRecord:
    def test_immutable(self):
        rec = EventRecord(1.0, _schema().kind("part.pready"), (0, 2))
        with pytest.raises(AttributeError):
            rec.time = 2.0
        with pytest.raises(AttributeError):
            del rec.kind

    def test_get_and_data(self):
        rec = EventRecord(1.0, _schema().kind("part.arrived"), (1, 2, 64))
        assert rec.get("partition") == 2
        assert rec.get("missing", "d") == "d"
        assert rec.data == {"rank": 1, "partition": 2, "nbytes": 64}

    def test_wire_drops_internal_fields(self):
        req = object()
        rec = EventRecord(1.0, _schema().kind("internal.ev"), (7, req))
        assert rec.wire() == {"rank": 7}


class TestEventBus:
    def test_disabled_kind_builds_no_record(self):
        s = _schema()
        bus = EventBus(s)
        assert not bus.subscribed(s.kind("part.pready"))
        bus.emit(s.kind("part.pready"), 0.0, 0, 0)  # no sink: no-op

    def test_dispatch_only_to_subscribed_kinds(self):
        s = _schema()
        bus = EventBus(s)
        mem = bus.record("part.pready")
        bus.emit(s.kind("part.pready"), 1.0, 0, 0)
        bus.emit(s.kind("part.arrived"), 2.0, 0, 0, 64)
        assert [r.kind.name for r in mem] == ["part.pready"]

    def test_detach_stops_delivery(self):
        s = _schema()
        bus = EventBus(s)
        mem = bus.record("*")
        bus.emit(s.kind("part.pready"), 1.0, 0, 0)
        bus.detach(mem)
        bus.emit(s.kind("part.pready"), 2.0, 0, 0)
        assert len(mem) == 1

    def test_late_registered_kind_is_tolerated(self):
        s = _schema()
        bus = EventBus(s)
        late = s.register("late.kind", ("rank",))
        bus.emit(late, 1.0, 0)  # must not raise
        mem = bus.record("late.kind")
        bus.emit(late, 2.0, 0)
        assert len(mem) == 1

    def test_emission_order_preserved_at_equal_time(self):
        s = _schema()
        bus = EventBus(s)
        mem = bus.record("*")
        for p in (2, 0, 1):
            bus.emit(s.kind("part.pready"), 5.0, 0, p)
        assert [r.get("partition") for r in mem] == [2, 0, 1]

    def test_finalize_reaches_each_sink_once(self):
        calls = []

        class Probe(MemorySink):
            def finalize(self):
                calls.append(self)

        s = _schema()
        bus = EventBus(s)
        probe = Probe()
        bus.attach(probe, ("part.pready",))
        bus.attach(probe, ("nic.tx_start",))
        bus.finalize()
        assert calls == [probe]


class TestMemorySink:
    def _filled(self):
        s = _schema()
        bus = EventBus(s)
        mem = bus.record("part.*")
        bus.emit(s.kind("part.pready"), 1.0, 0, 0)
        bus.emit(s.kind("part.pready"), 2.0, 1, 1)
        bus.emit(s.kind("part.arrived"), 3.0, 1, 0, 64)
        return mem

    def test_filter_by_kind_and_fields(self):
        mem = self._filled()
        assert len(mem.filter("part.pready")) == 2
        assert [r.time for r in mem.filter("part.pready", rank=1)] == [2.0]
        assert mem.filter("part.arrived", nbytes=999) == []

    def test_times_first_last_span(self):
        mem = self._filled()
        assert mem.times("part.pready") == [1.0, 2.0]
        assert mem.first("part.pready").time == 1.0
        assert mem.last("part.pready").time == 2.0
        assert mem.span("part.pready") == 1.0
        assert mem.first("nope") is None
        assert mem.span("part.arrived") == 0.0


class TestCounterSink:
    def test_counts_and_histograms(self):
        s = _schema()
        bus = EventBus(s)
        counters = bus.attach(CounterSink(), ("*",))
        bus.emit(s.kind("part.arrived"), 1.0, 0, 0, 64)
        bus.emit(s.kind("part.arrived"), 2.0, 0, 1, 4096)
        bus.emit(s.kind("part.pready"), 3.0, 1, 0)
        assert counters.total == 3
        assert counters.count("part.arrived") == 2
        assert counters.count("part.arrived", rank=0) == 2
        assert counters.count("part.pready", rank=0) == 0
        assert counters.rank_counts(1) == {"part.pready": 1}
        assert counters.rows() == [("part.arrived", 0, 2),
                                   ("part.pready", 1, 1)]
        hist = dict(counters.histogram_rows("part.arrived"))
        assert hist == {"[64, 128)": 1, "[4096, 8192)": 1}


class TestDigest:
    def _stream(self, bus, s, times):
        for t in times:
            bus.emit(s.kind("part.arrived"), t, 0, 0, 64)

    def test_identical_streams_identical_digest(self):
        s = _schema()
        digests = []
        for _ in range(2):
            bus = EventBus(s)
            d = bus.attach(DigestSink(), ("*",))
            self._stream(bus, s, [0.1, 0.2])
            digests.append(d.hexdigest())
        assert digests[0] == digests[1]

    def test_different_payload_changes_digest(self):
        s = _schema()
        bus = EventBus(s)
        a = bus.attach(DigestSink(), ("*",))
        self._stream(bus, s, [0.1])
        bus2 = EventBus(s)
        b = bus2.attach(DigestSink(), ("*",))
        self._stream(bus2, s, [0.1 + 1e-15])
        assert a.hexdigest() != b.hexdigest()

    def test_canonical_line_is_exact_and_wire_only(self):
        s = _schema()
        rec = EventRecord(0.1, s.kind("internal.ev"), (3, object()))
        line = canonical_line(rec)
        assert line.startswith((0.1).hex())
        assert "req" not in line
        assert "rank=3" in line


def _emit_iteration(bus, s=SCHEMA, iteration=0, partitions=2, t0=0.0):
    """Emit one well-formed benchmark iteration on ``bus``."""
    e = bus.emit
    e(s.kind("bench.part_begin"), t0, 0, iteration, 128, partitions)
    for p in range(partitions):
        e(s.kind("part.pready"), t0 + 0.01 * (p + 1), 0, p, 0, None)
        e(s.kind("part.arrived"), t0 + 0.02 * (p + 1), 1, p, 0, 64, None)
    e(s.kind("bench.single_begin"), t0 + 0.1, 0, iteration)
    e(s.kind("bench.join"), t0 + 0.12, 0, iteration)
    e(s.kind("bench.send_begin"), t0 + 0.13, 0, iteration)
    e(s.kind("bench.recv_complete"), t0 + 0.15, 1, iteration)


class TestTimelineBuilder:
    def test_builds_one_timeline_per_iteration(self):
        bus = EventBus()
        builder = bus.attach(TimelineBuilder(), TimelineBuilder.PATTERNS)
        _emit_iteration(bus, iteration=0, t0=0.0)
        _emit_iteration(bus, iteration=1, t0=1.0)
        bus.finalize()
        assert [it for it, _ in builder.timelines] == [0, 1]
        it0 = builder.timelines[0][1]
        assert it0.message_bytes == 128
        assert it0.pready_times == pytest.approx([0.01, 0.02])
        assert it0.arrival_times == pytest.approx([0.02, 0.04])
        assert it0.join_time == pytest.approx(0.02)
        assert it0.pt2pt_time == pytest.approx(0.02)

    def test_marker_outside_iteration_raises(self):
        bus = EventBus()
        bus.attach(TimelineBuilder(), TimelineBuilder.PATTERNS)
        with pytest.raises(SimulationError, match="outside a benchmark"):
            bus.emit(SCHEMA.kind("bench.join"), 0.0, 0, 0)

    def test_duplicate_pready_raises(self):
        bus = EventBus()
        bus.attach(TimelineBuilder(), TimelineBuilder.PATTERNS)
        bus.emit(SCHEMA.kind("bench.part_begin"), 0.0, 0, 0, 128, 2)
        bus.emit(SCHEMA.kind("part.pready"), 0.1, 0, 1, 0, None)
        with pytest.raises(SimulationError, match="duplicate"):
            bus.emit(SCHEMA.kind("part.pready"), 0.2, 0, 1, 0, None)

    def test_partition_out_of_range_raises(self):
        bus = EventBus()
        bus.attach(TimelineBuilder(), TimelineBuilder.PATTERNS)
        bus.emit(SCHEMA.kind("bench.part_begin"), 0.0, 0, 0, 128, 2)
        with pytest.raises(SimulationError, match="outside"):
            bus.emit(SCHEMA.kind("part.pready"), 0.1, 0, 5, 0, None)

    def test_incomplete_iteration_close_raises(self):
        bus = EventBus()
        bus.attach(TimelineBuilder(), TimelineBuilder.PATTERNS)
        bus.emit(SCHEMA.kind("bench.part_begin"), 0.0, 0, 0, 128, 1)
        with pytest.raises(SimulationError, match="incomplete"):
            bus.emit(SCHEMA.kind("bench.recv_complete"), 0.2, 1, 0)

    def test_unclosed_stream_raises_at_finalize(self):
        bus = EventBus()
        bus.attach(TimelineBuilder(), TimelineBuilder.PATTERNS)
        bus.emit(SCHEMA.kind("bench.part_begin"), 0.0, 0, 0, 128, 1)
        with pytest.raises(SimulationError, match="still open"):
            bus.finalize()

    def test_nested_part_begin_raises(self):
        bus = EventBus()
        bus.attach(TimelineBuilder(), TimelineBuilder.PATTERNS)
        bus.emit(SCHEMA.kind("bench.part_begin"), 0.0, 0, 0, 128, 1)
        with pytest.raises(SimulationError, match="still open"):
            bus.emit(SCHEMA.kind("bench.part_begin"), 0.5, 0, 1, 128, 1)


class TestExporters:
    def _records(self):
        bus = EventBus()
        mem = bus.record("bench.*", "part.pready", "part.arrived")
        _emit_iteration(bus)
        return mem.records

    def test_event_to_dict_is_wire_only(self):
        out = event_to_dict(self._records()[1])
        assert out["kind"] == "part.pready"
        assert "req" not in out
        assert set(out) == {"t", "kind", "rank", "partition", "epoch"}

    def test_write_jsonl_round_trips(self):
        records = self._records()
        buf = io.StringIO()
        n = write_jsonl(records, buf)
        lines = buf.getvalue().strip().split("\n")
        assert n == len(records) == len(lines)
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "bench.part_begin"
        assert parsed[0]["message_bytes"] == 128

    def test_chrome_trace_structure(self):
        records = self._records()
        trace = to_chrome_trace(records)
        assert set(trace) >= {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        # one process_name + one thread_name per rank seen (0 and 1)
        assert {m["name"] for m in meta} == {"process_name", "thread_name"}
        assert sorted(m["tid"] for m in meta if "tid" in m) == [0, 1]
        assert len(instants) == len(records)
        for e in instants:
            assert e["s"] == "t" and e["pid"] == 0
            assert isinstance(e["tid"], int)
            assert e["cat"] in {"bench", "part"}
        # timestamps are microseconds of simulated time, emission order
        assert instants[0]["ts"] == pytest.approx(0.0)
        assert instants[-1]["ts"] == pytest.approx(0.15e6)

    def test_write_chrome_trace_is_valid_json(self):
        buf = io.StringIO()
        n = write_chrome_trace(self._records(), buf)
        parsed = json.loads(buf.getvalue())
        assert n == len(parsed["traceEvents"])


class TestRunnerStream:
    CONFIG = PtpBenchmarkConfig(message_bytes=1 << 12, partitions=2,
                                compute_seconds=1e-4, iterations=2,
                                warmup=1, seed=3)

    def test_trial_digest_is_reproducible(self):
        a, _ = run_ptp_trial(self.CONFIG)
        b, _ = run_ptp_trial(self.CONFIG)
        assert a.event_digest is not None
        assert a.event_digest == b.event_digest
        assert len(a.samples) == self.CONFIG.iterations

    def test_trial_accepts_extra_sinks(self):
        counters = CounterSink()
        mem = MemorySink()
        result, cluster = run_ptp_trial(
            self.CONFIG, sinks=[counters, (mem, ("part.arrived",))])
        assert counters.total > 0
        assert counters.count("bench.recv_complete") == \
            self.CONFIG.iterations + self.CONFIG.warmup
        per_iter = self.CONFIG.partitions
        assert len(mem) == (self.CONFIG.iterations +
                            self.CONFIG.warmup) * per_iter
        assert cluster.now > 0

    def test_trial_chrome_export_end_to_end(self):
        mem = MemorySink()
        run_ptp_trial(self.CONFIG, sinks=[(mem, ("bench.*", "part.*"))])
        trace = to_chrome_trace(mem.records)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(mem)
        assert {e["cat"] for e in instants} == {"bench", "part"}
        tids = {e["tid"] for e in instants}
        assert tids == {0, 1}
        # the stream must be renderable: strictly JSON-serializable
        json.dumps(trace)

    def test_timelines_match_metrics_pipeline(self):
        from repro.metrics import PtpMetrics
        result, _ = run_ptp_trial(self.CONFIG)
        for sample in result.samples:
            assert sample.metrics == \
                PtpMetrics.from_timeline(sample.timeline)
            assert sample.timeline.partitions == self.CONFIG.partitions
