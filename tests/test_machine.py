"""Unit tests for the machine model: topology, binding, cache, CPU, NUMA."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import (BindPolicy, CacheModel, ComputeModel, NIAGARA_NODE,
                           NUMAModel, bind_threads,
                           scaled_compute_time, validate_spec)


class TestTopology:
    def test_niagara_dimensions(self):
        assert NIAGARA_NODE.sockets_per_node == 2
        assert NIAGARA_NODE.cores_per_socket == 20
        assert NIAGARA_NODE.cores_per_node == 40
        assert NIAGARA_NODE.clock_ghz == 2.4

    def test_socket_of(self):
        assert NIAGARA_NODE.socket_of(0) == 0
        assert NIAGARA_NODE.socket_of(19) == 0
        assert NIAGARA_NODE.socket_of(20) == 1
        assert NIAGARA_NODE.socket_of(39) == 1

    def test_negative_core_rejected(self):
        with pytest.raises(ConfigurationError):
            NIAGARA_NODE.socket_of(-1)

    def test_remote_to_nic(self):
        assert not NIAGARA_NODE.is_remote_to_nic(0)
        assert NIAGARA_NODE.is_remote_to_nic(25)

    def test_validate_rejects_bad_specs(self):
        with pytest.raises(ConfigurationError):
            validate_spec(NIAGARA_NODE.with_overrides(sockets_per_node=0))
        with pytest.raises(ConfigurationError):
            validate_spec(NIAGARA_NODE.with_overrides(nic_socket=5))
        with pytest.raises(ConfigurationError):
            validate_spec(NIAGARA_NODE.with_overrides(
                cache_bandwidth=1.0, memory_bandwidth=2.0))
        with pytest.raises(ConfigurationError):
            validate_spec(NIAGARA_NODE.with_overrides(
                inter_socket_penalty=-1.0))

    def test_with_overrides_is_copy(self):
        alt = NIAGARA_NODE.with_overrides(cores_per_socket=8)
        assert alt.cores_per_socket == 8
        assert NIAGARA_NODE.cores_per_socket == 20


class TestBinding:
    def test_compact_fills_nic_socket_first(self):
        b = bind_threads(20, NIAGARA_NODE, BindPolicy.COMPACT)
        assert all(not b.is_remote_to_nic(t) for t in range(20))
        assert b.spillover_threads() == []

    def test_compact_spillover_past_one_socket(self):
        b = bind_threads(32, NIAGARA_NODE, BindPolicy.COMPACT)
        assert b.spillover_threads() == list(range(20, 32))
        assert not b.oversubscribed

    def test_compact_oversubscription_wraps(self):
        b = bind_threads(64, NIAGARA_NODE, BindPolicy.COMPACT)
        assert b.oversubscribed
        occ = b.occupancy()
        assert max(occ.values()) == 2
        assert b.oversubscription_factor(0) == 2  # cores 0..23 doubled

    def test_scatter_alternates_sockets(self):
        b = bind_threads(4, NIAGARA_NODE, BindPolicy.SCATTER)
        sockets = [b.socket_of(t) for t in range(4)]
        assert sockets == [0, 1, 0, 1]

    def test_single_socket_oversubscribes_early(self):
        b = bind_threads(32, NIAGARA_NODE, BindPolicy.SINGLE_SOCKET)
        assert b.spillover_threads() == []
        assert b.oversubscribed

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            bind_threads(0, NIAGARA_NODE)

    def test_nthreads_property(self):
        assert bind_threads(7, NIAGARA_NODE).nthreads == 7


class TestCache:
    def test_miss_then_hit(self):
        cache = CacheModel(NIAGARA_NODE)
        miss = cache.access_time("buf", 1 << 20)
        hit = cache.access_time("buf", 1 << 20)
        assert miss > hit > 0
        assert miss == pytest.approx((1 << 20) / NIAGARA_NODE.memory_bandwidth)
        assert hit == pytest.approx((1 << 20) / NIAGARA_NODE.cache_bandwidth)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_zero_bytes_is_free(self):
        cache = CacheModel(NIAGARA_NODE)
        assert cache.access_time("buf", 0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheModel(NIAGARA_NODE).access_time("buf", -1)

    def test_invalidate_flushes_and_costs(self):
        cache = CacheModel(NIAGARA_NODE)
        cache.access_time("buf", 4096)
        cost = cache.invalidate()
        assert cost == pytest.approx(
            2 * NIAGARA_NODE.llc_bytes / NIAGARA_NODE.memory_bandwidth)
        assert not cache.is_resident("buf")
        assert cache.stats.invalidations == 1
        # next access misses again
        cache.access_time("buf", 4096)
        assert cache.stats.misses == 2

    def test_touch_installs_without_cost(self):
        cache = CacheModel(NIAGARA_NODE)
        cache.touch("buf", 4096)
        assert cache.is_resident("buf")
        assert cache.stats.misses == 0

    def test_capacity_eviction(self):
        cache = CacheModel(NIAGARA_NODE)
        half = NIAGARA_NODE.llc_bytes // 2 + 1
        cache.touch("a", half)
        cache.touch("b", half)  # evicts a
        assert not cache.is_resident("a")
        assert cache.is_resident("b")
        assert cache.resident_bytes <= NIAGARA_NODE.llc_bytes

    def test_oversized_buffer_clamped_to_capacity(self):
        cache = CacheModel(NIAGARA_NODE)
        cache.touch("huge", NIAGARA_NODE.llc_bytes * 4)
        assert cache.resident_bytes == NIAGARA_NODE.llc_bytes

    def test_hit_ratio(self):
        cache = CacheModel(NIAGARA_NODE)
        assert cache.stats.hit_ratio == 0.0
        cache.access_time("x", 64)
        cache.access_time("x", 64)
        assert cache.stats.hit_ratio == pytest.approx(0.5)


class TestComputeScaling:
    def test_unshared_core_is_identity(self):
        assert scaled_compute_time(0.01, 1, NIAGARA_NODE) == 0.01

    def test_sharing_multiplies_and_adds_switches(self):
        wall = scaled_compute_time(0.01, 2, NIAGARA_NODE)
        assert wall > 0.02  # 2x plus context switches

    def test_negative_compute_rejected(self):
        with pytest.raises(ConfigurationError):
            scaled_compute_time(-1.0, 1, NIAGARA_NODE)

    def test_zero_share_rejected(self):
        with pytest.raises(ConfigurationError):
            scaled_compute_time(1.0, 0, NIAGARA_NODE)

    def test_compute_model_slowest_thread(self):
        binding = bind_threads(64, NIAGARA_NODE)
        model = ComputeModel(binding)
        slowest = model.slowest_wall_time(0.01)
        assert slowest >= model.wall_time(39, 0.01)
        assert slowest > 0.01


class TestNUMA:
    def test_local_copy_at_full_bandwidth(self):
        numa = NUMAModel(NIAGARA_NODE)
        t = numa.copy_time(1 << 20, 0, 0)
        assert t == pytest.approx((1 << 20) / NIAGARA_NODE.memory_bandwidth)

    def test_cross_socket_copy_slower(self):
        numa = NUMAModel(NIAGARA_NODE)
        assert numa.copy_time(1 << 20, 0, 1) > numa.copy_time(1 << 20, 0, 0)

    def test_injection_penalty_only_off_nic_socket(self):
        numa = NUMAModel(NIAGARA_NODE)
        assert numa.injection_penalty(0) == 0.0
        assert numa.injection_penalty(25) == \
            NIAGARA_NODE.inter_socket_penalty

    def test_bad_socket_rejected(self):
        with pytest.raises(ConfigurationError):
            NUMAModel(NIAGARA_NODE).copy_time(10, 0, 7)
