"""JSON persistence of sweep results."""

import json

import pytest

from repro.core import (PtpBenchmarkConfig, load_sweep, result_from_dict,
                        result_to_dict, run_ptp_benchmark, save_sweep,
                        sweep_from_dict, sweep_to_dict, sweep_ptp)
from repro.core.persistence import FORMAT_VERSION
from repro.errors import ConfigurationError
from repro.noise import UniformNoise


@pytest.fixture(scope="module")
def sweep():
    base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                              compute_seconds=1e-4,
                              noise=UniformNoise(4.0), iterations=2)
    return sweep_ptp(base, [1024, 65536], [1, 4])


class TestResultRoundTrip:
    def test_metrics_survive_exactly(self, quick_config):
        result = run_ptp_benchmark(quick_config)
        loaded = result_from_dict(result_to_dict(result))
        assert loaded.overhead.mean == result.overhead.mean
        assert loaded.perceived_bandwidth.mean == \
            result.perceived_bandwidth.mean
        assert loaded.early_bird_fraction.mean == \
            result.early_bird_fraction.mean
        assert len(loaded.samples) == len(result.samples)

    def test_config_snapshot_fields(self, quick_config):
        data = result_to_dict(run_ptp_benchmark(quick_config))
        snap = data["config"]
        assert snap["message_bytes"] == quick_config.message_bytes
        assert snap["partitions"] == quick_config.partitions
        assert snap["cache"] == quick_config.cache
        assert "label" in snap

    def test_malformed_record_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            result_from_dict({"config": {}})


class TestSweepRoundTrip:
    def test_json_serializable(self, sweep):
        text = json.dumps(sweep_to_dict(sweep))
        assert json.loads(text)["format_version"] == FORMAT_VERSION

    def test_values_survive(self, sweep):
        loaded = sweep_from_dict(sweep_to_dict(sweep))
        for m in (1024, 65536):
            for n in (1, 4):
                assert loaded.value("overhead", m, n) == \
                    sweep.value("overhead", m, n)
                assert loaded.value("application_availability", m, n) == \
                    sweep.value("application_availability", m, n)

    def test_unknown_version_rejected(self, sweep):
        data = sweep_to_dict(sweep)
        data["format_version"] = 999
        with pytest.raises(ConfigurationError, match="format"):
            sweep_from_dict(data)

    def test_missing_point_rejected(self, sweep):
        loaded = sweep_from_dict(sweep_to_dict(sweep))
        with pytest.raises(ConfigurationError, match="no stored point"):
            loaded.value("overhead", 999, 1)


class TestFileIO:
    def test_save_and_load(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "results" / "sweep.json")
        assert path.exists()
        loaded = load_sweep(path)
        assert loaded.value("overhead", 1024, 1) == \
            sweep.value("overhead", 1024, 1)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no result file"):
            load_sweep(tmp_path / "nope.json")
