"""Thread-team simulation: fork/join, compute scaling, barriers."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.machine import BindPolicy
from repro.mpi import Cluster
from repro.threadsim import DEFAULT_OPENMP_COSTS, OpenMPCosts, SimBarrier
from repro.sim import Simulator


class TestOpenMPCosts:
    def test_fork_cost_grows_with_threads(self):
        c = DEFAULT_OPENMP_COSTS
        assert c.fork_cost(16) > c.fork_cost(2) > 0

    def test_join_cost_grows_with_threads(self):
        c = DEFAULT_OPENMP_COSTS
        assert c.join_cost(16) > c.join_cost(2) > 0

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_OPENMP_COSTS.fork_cost(0)
        with pytest.raises(ConfigurationError):
            DEFAULT_OPENMP_COSTS.join_cost(0)


class TestForkJoin:
    def test_workers_run_in_parallel(self):
        def program(ctx):
            def worker(tc):
                yield from tc.compute(0.01)
                return tc.thread_id

            team = yield from ctx.fork(8, worker)
            joined_at = yield from team.join()
            return (joined_at, team.results())

        cluster = Cluster(nranks=1)
        (joined_at, results), = cluster.run(program)
        # 8 parallel threads of 10 ms each: ~10 ms wall, not 80 ms.
        assert 0.01 < joined_at < 0.02
        assert results == list(range(8))

    def test_join_waits_for_slowest(self):
        def program(ctx):
            def worker(tc):
                yield from tc.compute(0.001 * (tc.thread_id + 1))

            team = yield from ctx.fork(4, worker)
            yield from team.join()
            return ctx.sim.now

        cluster = Cluster(nranks=1)
        (t,) = cluster.run(program)
        assert t >= 0.004

    def test_join_twice_raises(self):
        def program(ctx):
            def worker(tc):
                yield from tc.compute(1e-4)

            team = yield from ctx.fork(2, worker)
            yield from team.join()
            yield from team.join()

        with pytest.raises(SimulationError, match="twice"):
            Cluster(nranks=1).run(program)

    def test_results_before_join_raises(self):
        def program(ctx):
            def worker(tc):
                yield from tc.compute(0.01)

            team = yield from ctx.fork(2, worker)
            team.results()
            yield from team.join()

        with pytest.raises(SimulationError, match="join"):
            Cluster(nranks=1).run(program)

    def test_worker_failure_propagates_through_join(self):
        def program(ctx):
            def worker(tc):
                yield from tc.compute(1e-4)
                raise ValueError("worker died")

            team = yield from ctx.fork(2, worker)
            yield from team.join()

        with pytest.raises(ValueError, match="worker died"):
            Cluster(nranks=1).run(program)

    def test_oversubscribed_team_takes_longer(self):
        def run_with(nthreads):
            def program(ctx):
                def worker(tc):
                    yield from tc.compute(0.01)

                team = yield from ctx.fork(nthreads, worker)
                yield from team.join()
                return ctx.sim.now

            return Cluster(nranks=1).run(program)[0]

        t40 = run_with(40)
        t64 = run_with(64)   # 64 threads on 40 cores -> ~2x slower
        assert t64 > t40 * 1.5

    def test_parallel_helper(self):
        def program(ctx):
            results = yield from ctx.parallel(
                4, lambda tc: tc.compute(1e-4))
            return len(results)

        assert Cluster(nranks=1).run(program) == [4]

    def test_spillover_binding_in_team(self):
        def program(ctx):
            def worker(tc):
                yield from tc.compute(1e-5)
                return tc.core

            team = yield from ctx.fork(32, worker,
                                       policy=BindPolicy.COMPACT)
            yield from team.join()
            return team.results()

        (cores,) = Cluster(nranks=1).run(program)
        sockets = {c // 20 for c in cores}
        assert sockets == {0, 1}


class TestSimBarrier:
    def test_all_parties_leave_together(self):
        sim = Simulator()
        bar = SimBarrier(sim, parties=3, cost_per_party=0.0)
        leave = []

        def member(delay):
            yield sim.timeout(delay)
            yield from bar.wait()
            leave.append(sim.now)

        for d in (1.0, 2.0, 3.0):
            sim.process(member(d))
        sim.run()
        assert leave == [3.0, 3.0, 3.0]

    def test_barrier_is_reusable(self):
        sim = Simulator()
        bar = SimBarrier(sim, parties=2, cost_per_party=0.0)
        log = []

        def member(tid):
            for round_idx in range(3):
                yield sim.timeout(1.0 + tid * 0.1)
                yield from bar.wait()
                log.append((round_idx, tid, sim.now))

        sim.process(member(0))
        sim.process(member(1))
        sim.run()
        assert len(log) == 6
        # Within each round, both members leave at the same instant.
        by_round = {}
        for round_idx, _, t in log:
            by_round.setdefault(round_idx, set()).add(t)
        assert all(len(ts) == 1 for ts in by_round.values())

    def test_single_party_never_blocks(self):
        sim = Simulator()
        bar = SimBarrier(sim, parties=1, cost_per_party=0.0)

        def member():
            yield from bar.wait()
            return sim.now

        p = sim.process(member())
        sim.run()
        assert p.value == 0.0

    def test_invalid_parties_rejected(self):
        with pytest.raises(ConfigurationError):
            SimBarrier(Simulator(), parties=0)
