"""Device-stream extension: in-order kernels, triggered preadys."""

import pytest

from repro.errors import ConfigurationError
from repro.mpi import Cluster
from repro.partitioned import IMPL_NATIVE
from repro.threadsim import DeviceStream


class TestStreamBasics:
    def test_kernels_run_in_order(self):
        def program(ctx):
            stream = DeviceStream(ctx, launch_overhead=0.0, queue_gap=0.0)
            done_times = []
            for i, dur in enumerate((3e-3, 1e-3, 2e-3)):
                handle = yield from stream.launch(ctx.main, dur,
                                                  name=f"k{i}")
                handle.done.callbacks.append(
                    lambda ev: done_times.append(ev.value))
            yield from stream.synchronize(ctx.main)
            return done_times

        (times,) = Cluster(nranks=1).run(program)
        # In-order: completion at 3, 4, 6 ms regardless of durations.
        assert times == pytest.approx([3e-3, 4e-3, 6e-3])

    def test_launch_overhead_charged_to_host(self):
        def program(ctx):
            stream = DeviceStream(ctx, launch_overhead=1e-3, queue_gap=0.0)
            t0 = ctx.sim.now
            yield from stream.launch(ctx.main, 0.0)
            return ctx.sim.now - t0

        (elapsed,) = Cluster(nranks=1).run(program)
        assert elapsed == pytest.approx(1e-3)

    def test_synchronize_waits_for_drain(self):
        def program(ctx):
            stream = DeviceStream(ctx, launch_overhead=0.0, queue_gap=0.0)
            yield from stream.launch(ctx.main, 5e-3)
            yield from stream.synchronize(ctx.main)
            return (ctx.sim.now, stream.pending, stream.kernels_completed)

        ((t, pending, completed),) = Cluster(nranks=1).run(program)
        assert t == pytest.approx(5e-3)
        assert pending == 0
        assert completed == 1

    def test_synchronize_on_idle_stream_is_instant(self):
        def program(ctx):
            stream = DeviceStream(ctx)
            yield from stream.synchronize(ctx.main)
            return ctx.sim.now

        (t,) = Cluster(nranks=1).run(program)
        assert t == 0.0

    def test_negative_costs_rejected(self):
        def program(ctx):
            DeviceStream(ctx, launch_overhead=-1.0)
            yield ctx.sim.timeout(0)

        with pytest.raises(ConfigurationError):
            Cluster(nranks=1).run(program)

    def test_negative_duration_rejected(self):
        def program(ctx):
            stream = DeviceStream(ctx)
            yield from stream.launch(ctx.main, -1.0)

        with pytest.raises(ConfigurationError):
            Cluster(nranks=1).run(program)


class TestDeviceTriggeredPartitioned:
    def test_stream_triggered_preadys_complete_a_transfer(self):
        """The §6.1 future-work scenario end-to-end: each kernel's
        completion fires a native pready from the device timeline."""
        m, n = 1 << 16, 4

        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, m, n,
                                                impl=IMPL_NATIVE)
                yield from ps.start(main)
                stream = DeviceStream(ctx)

                def trigger(i):
                    def run():
                        yield from ps.pready(stream.device_tc, i)
                    return run

                for i in range(n):
                    yield from stream.launch(main, 1e-3,
                                             on_complete=trigger(i))
                yield from stream.synchronize(main)
                yield from ps.wait(main)
                return ctx.sim.now
            pr = yield from comm.precv_init(main, 0, 5, m, n,
                                            impl=IMPL_NATIVE)
            yield from pr.start(main)
            yield from pr.wait(main)
            return pr.arrived_count

        cluster = Cluster(nranks=2)
        mem = cluster.obs.record("part.arrived")
        results = cluster.run(program)
        assert results[1] == n
        # Arrivals are pipelined behind the serialized kernels: the k-th
        # partition lands shortly after k kernels (~k ms), not all at once.
        arrivals = sorted(mem.times("part.arrived"))
        assert len(arrivals) == n
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g > 0.5e-3 for g in gaps)

    def test_early_partitions_ship_before_stream_drains(self):
        """Device-triggered early-bird: the first partition arrives while
        later kernels are still executing."""
        m, n = 1 << 16, 4
        first_arrival = {}

        def program(ctx):
            comm, main = ctx.comm, ctx.main
            if ctx.rank == 0:
                ps = yield from comm.psend_init(main, 1, 5, m, n,
                                                impl=IMPL_NATIVE)
                yield from ps.start(main)
                stream = DeviceStream(ctx)

                def trigger(i):
                    def run():
                        yield from ps.pready(stream.device_tc, i)
                    return run

                for i in range(n):
                    yield from stream.launch(main, 2e-3,
                                             on_complete=trigger(i))
                yield from stream.synchronize(main)
                first_arrival["drain"] = ctx.sim.now
                yield from ps.wait(main)
            else:
                pr = yield from comm.precv_init(main, 0, 5, m, n,
                                                impl=IMPL_NATIVE)
                yield from pr.start(main)
                ev = pr.arrived_event(0)
                yield ev
                first_arrival["first"] = ctx.sim.now
                yield from pr.wait(main)

        Cluster(nranks=2).run(program)
        assert first_arrival["first"] < first_arrival["drain"]
