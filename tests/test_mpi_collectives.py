"""Collective-operation tests: barrier, bcast, allreduce, allgather."""

import pytest

from repro.errors import MPIError
from repro.mpi import Cluster


def _run(program, nranks, **kwargs):
    cluster = Cluster(nranks=nranks, **kwargs)
    return cluster.run(program)


class TestBarrier:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8])
    def test_barrier_synchronizes(self, nranks):
        def program(ctx):
            # Stagger arrival; everyone leaves at (or after) the last.
            yield ctx.sim.timeout(ctx.rank * 1e-3)
            yield from ctx.comm.barrier(ctx.main)
            return ctx.sim.now

        results = _run(program, nranks)
        latest_arrival = (nranks - 1) * 1e-3
        assert all(t >= latest_arrival for t in results)

    def test_back_to_back_barriers_do_not_cross_match(self):
        def program(ctx):
            for _ in range(5):
                yield from ctx.comm.barrier(ctx.main)
            return "ok"

        assert _run(program, 4) == ["ok"] * 4


class TestBcast:
    @pytest.mark.parametrize("nranks,root", [(2, 0), (4, 1), (5, 3), (8, 7)])
    def test_bcast_reaches_all(self, nranks, root):
        def program(ctx):
            payload = "secret" if ctx.rank == root else None
            value = yield from ctx.comm.bcast(ctx.main, root, 4096, payload)
            return value

        assert _run(program, nranks) == ["secret"] * nranks

    def test_bad_root_rejected(self):
        def program(ctx):
            yield from ctx.comm.bcast(ctx.main, 9, 64)

        with pytest.raises(MPIError):
            _run(program, 2)

    def test_single_rank_bcast_is_identity(self):
        def program(ctx):
            value = yield from ctx.comm.bcast(ctx.main, 0, 64, payload="x")
            return value

        assert _run(program, 1) == ["x"]


class TestAllreduce:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])  # powers of two
    def test_sum_recursive_doubling(self, nranks):
        def program(ctx):
            value = yield from ctx.comm.allreduce(ctx.main, 8,
                                                  value=float(ctx.rank))
            return value

        results = _run(program, nranks)
        assert results == [float(sum(range(nranks)))] * nranks

    @pytest.mark.parametrize("nranks", [3, 5, 6, 7])
    def test_sum_non_power_of_two_fallback(self, nranks):
        def program(ctx):
            value = yield from ctx.comm.allreduce(ctx.main, 8,
                                                  value=float(ctx.rank))
            return value

        results = _run(program, nranks)
        assert results == [float(sum(range(nranks)))] * nranks

    def test_custom_op(self):
        def program(ctx):
            value = yield from ctx.comm.allreduce(
                ctx.main, 8, value=ctx.rank + 1, op=max)
            return value

        assert _run(program, 4) == [4, 4, 4, 4]


class TestAllgather:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8])
    def test_gathers_every_contribution(self, nranks):
        def program(ctx):
            values = yield from ctx.comm.allgather(ctx.main, 64,
                                                   value=ctx.rank * 10)
            return values

        results = _run(program, nranks)
        expected = [r * 10 for r in range(nranks)]
        assert all(res == expected for res in results)


class TestCommDup:
    def test_dup_separates_matching_contexts(self):
        def program(ctx):
            dup = ctx.comm.dup()
            if ctx.rank == 0:
                # Same tag on both communicators; payloads must not cross.
                yield from ctx.comm.send(ctx.main, 1, 5, 64, payload="world")
                yield from dup.send(ctx.main, 1, 5, 64, payload="dup")
            else:
                s_dup = yield from dup.recv(ctx.main, 0, 5, 64)
                s_world = yield from ctx.comm.recv(ctx.main, 0, 5, 64)
                return (s_world.payload, s_dup.payload)

        cluster = Cluster(nranks=2)
        results = cluster.run(program)
        assert results[1] == ("world", "dup")

    def test_dup_ids_agree_across_ranks(self):
        def program(ctx):
            yield from ctx.comm.barrier(ctx.main)
            dup = ctx.comm.dup()
            return dup.comm_id

        cluster = Cluster(nranks=4)
        ids = cluster.run(program)
        assert len(set(ids)) == 1
        assert ids[0] != 0
