"""CLI: argument parsing and end-to-end command output."""

import json
from pathlib import Path

import pytest

from repro.cli import FIGURES, build_parser, main

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


class TestParser:
    def test_all_figures_registered(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args([name])
            assert args.command == name
            assert args.full is False

    def test_full_flag(self):
        args = build_parser().parse_args(["fig4", "--full"])
        assert args.full is True

    def test_metrics_required_args(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["metrics"])
        args = parser.parse_args(
            ["metrics", "--message-bytes", "1024", "--partitions", "4"])
        assert args.message_bytes == 1024
        assert args.partitions == 4
        assert args.noise == "none"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_lint_args(self):
        args = build_parser().parse_args(
            ["lint", "src", "tests", "--format", "json",
             "--disable", "SIM103", "--disable", "SIM104"])
        assert args.paths == ["src", "tests"]
        assert args.format == "json"
        assert args.disable == ["SIM103", "SIM104"]

    def test_check_args(self):
        args = build_parser().parse_args(
            ["check", "prog.py", "--nranks", "4"])
        assert args.program == "prog.py"
        assert args.nranks == 4
        assert args.format == "text"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_metrics_prints_all_four(self, capsys):
        code = main(["metrics", "--message-bytes", "65536",
                     "--partitions", "4", "--compute-ms", "1",
                     "--noise", "uniform", "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        for phrase in ("overhead", "perceived bandwidth",
                       "application availability", "early-bird"):
            assert phrase in out

    def test_metrics_native_impl(self, capsys):
        assert main(["metrics", "--message-bytes", "65536",
                     "--partitions", "4", "--compute-ms", "1",
                     "--impl", "native", "--iterations", "2"]) == 0
        assert "native" in capsys.readouterr().out

    def test_advisor(self, capsys):
        code = main(["advisor", "--message-bytes", "262144",
                     "--compute-ms", "2", "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended partitions" in out
        assert "<-- recommended" in out

    def test_fig7_runs_quick(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "single" in out and "gaussian" in out

    def test_fig13_runs_quick(self, capsys):
        assert main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "256" in out


class TestAnalysisCommands:
    def test_lint_clean_path_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "static_clean.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_findings_exit_one(self, capsys):
        code = main(["lint", str(FIXTURES / "static_wall_clock.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "SIM101" in out and "1 finding(s)" in out

    def test_lint_disable_silences_rule(self, capsys):
        code = main(["lint", str(FIXTURES / "static_wall_clock.py"),
                     "--disable", "SIM101"])
        assert code == 0
        capsys.readouterr()

    def test_lint_json_output(self, capsys):
        code = main(["lint", str(FIXTURES / "static_global_random.py"),
                     "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "SIM102"

    def test_lint_shipped_tree_clean(self, capsys):
        root = Path(__file__).parent.parent
        code = main(["lint", str(root / "src" / "repro"),
                     str(root / "benchmarks"), str(root / "examples")])
        assert code == 0
        capsys.readouterr()

    def test_check_clean_program(self, capsys):
        assert main(["check", str(FIXTURES / "clean.py")]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_check_violating_program_exits_one(self, capsys):
        code = main(["check", str(FIXTURES / "double_pready.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "PART001" in out and "VIOLATIONS" in out

    def test_check_json_output(self, capsys):
        code = main(["check", str(FIXTURES / "leaked_request.py"),
                     "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert [f["rule"] for f in payload["findings"]] == ["FIN001"]

    def test_check_disable_silences_rule(self, capsys):
        code = main(["check", str(FIXTURES / "leaked_request.py"),
                     "--disable", "FIN001"])
        assert code == 0
        capsys.readouterr()

    def test_lint_missing_path_exits_two(self, capsys):
        code = main(["lint", "no/such/dir"])
        assert code == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_check_missing_program_exits_two(self, capsys):
        code = main(["check", "no/such/program.py"])
        assert code == 2
        assert "no such program file" in capsys.readouterr().err


_TRACE_ARGS = ["--message-bytes", "4096", "--partitions", "2",
               "--compute-ms", "0.1", "--iterations", "2"]


class TestTraceCommands:
    def test_trace_export_jsonl_to_stdout(self, capsys):
        code = main(["trace", "export", *_TRACE_ARGS,
                     "--kinds", "part.pready,part.arrived"])
        assert code == 0
        lines = capsys.readouterr().out.strip().split("\n")
        parsed = [json.loads(line) for line in lines]
        assert {p["kind"] for p in parsed} == {"part.pready",
                                               "part.arrived"}
        assert all("t" in p and "rank" in p for p in parsed)

    def test_trace_export_chrome_to_file(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        code = main(["trace", "export", *_TRACE_ARGS,
                     "--format", "chrome", "--kinds", "part.*,bench.*",
                     "-o", str(out)])
        assert code == 0
        assert "stream digest" in capsys.readouterr().out
        trace = json.loads(out.read_text())
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases == {"M", "i"}

    def test_trace_export_unknown_kind_exits_two(self, capsys):
        code = main(["trace", "export", *_TRACE_ARGS,
                     "--kinds", "part.*,bogus.*"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown event kind" in err and "bogus.*" in err

    def test_report_text(self, capsys):
        code = main(["report", *_TRACE_ARGS])
        assert code == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "event counts" in out
        assert "event stream digest:" in out

    def test_report_json(self, capsys):
        code = main(["report", *_TRACE_ARGS, "--format", "json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["event_digest"]) == 64
        assert data["event_counts"]
        assert [r["rank"] for r in data["ranks"]] == [0, 1]
        assert all(r["events_observed"] > 0 for r in data["ranks"])

    def test_report_unknown_kind_exits_two(self, capsys):
        code = main(["report", *_TRACE_ARGS, "--kinds", "nope"])
        assert code == 2
        assert "unknown event kind" in capsys.readouterr().err


class TestPoolFlags:
    def test_pool_flag_parses_with_keep_default(self):
        parser = build_parser()
        assert parser.parse_args(["sweep"]).pool == "keep"
        assert parser.parse_args(
            ["sweep", "--pool", "per-sweep"]).pool == "per-sweep"
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "--pool", "sometimes"])

    def test_invalid_jobs_raises_not_falls_back(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            main(["sweep", "--sizes", "1024", "--counts", "1",
                  "--jobs", "0"])

    def test_sweep_on_kept_pool_reports_pool_counters(self, capsys):
        from repro.core.pool import shutdown_shared_pool
        argv = ["sweep", "--sizes", "1024,4096", "--counts", "1,2",
                "--jobs", "2", "--iterations", "1", "--metric", "overhead"]
        try:
            assert main(argv) == 0
            first = capsys.readouterr().out
            assert main(argv + ["--pool", "per-sweep"]) == 0
            second = capsys.readouterr().out
        finally:
            shutdown_shared_pool()
        # Both modes compute the same table; the provenance line carries
        # the pool counters either way.
        assert first.split("sweep engine:")[0] == \
            second.split("sweep engine:")[0]
        assert "warm" in first and "stolen" in first
