"""CLI: argument parsing and end-to-end command output."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_all_figures_registered(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args([name])
            assert args.command == name
            assert args.full is False

    def test_full_flag(self):
        args = build_parser().parse_args(["fig4", "--full"])
        assert args.full is True

    def test_metrics_required_args(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["metrics"])
        args = parser.parse_args(
            ["metrics", "--message-bytes", "1024", "--partitions", "4"])
        assert args.message_bytes == 1024
        assert args.partitions == 4
        assert args.noise == "none"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_metrics_prints_all_four(self, capsys):
        code = main(["metrics", "--message-bytes", "65536",
                     "--partitions", "4", "--compute-ms", "1",
                     "--noise", "uniform", "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        for phrase in ("overhead", "perceived bandwidth",
                       "application availability", "early-bird"):
            assert phrase in out

    def test_metrics_native_impl(self, capsys):
        assert main(["metrics", "--message-bytes", "65536",
                     "--partitions", "4", "--compute-ms", "1",
                     "--impl", "native", "--iterations", "2"]) == 0
        assert "native" in capsys.readouterr().out

    def test_advisor(self, capsys):
        code = main(["advisor", "--message-bytes", "262144",
                     "--compute-ms", "2", "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended partitions" in out
        assert "<-- recommended" in out

    def test_fig7_runs_quick(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "single" in out and "gaussian" in out

    def test_fig13_runs_quick(self, capsys):
        assert main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "256" in out
