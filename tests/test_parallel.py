"""The parallel sweep engine and the content-addressed result cache."""

import json
import struct
import threading
import time

import pytest

from repro.core import (METRIC_NAMES, PtpBenchmarkConfig, ResultCache,
                        SweepStats, config_fingerprint, derive_cell_seed,
                        plan_cells, run_cells, run_ptp_benchmark, sweep_ptp)
from repro.core.parallel import CACHE_SCHEMA_VERSION
from repro.core.runner import EXECUTIONS
from repro.errors import ConfigurationError
from repro.noise import GaussianNoise, UniformNoise


def _base(**overrides):
    defaults = dict(message_bytes=64, partitions=1,
                    compute_seconds=1e-4, iterations=2)
    defaults.update(overrides)
    return PtpBenchmarkConfig(**defaults)


SIZES = [1024, 65536]
COUNTS = [1, 4]


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_instances(self):
        a = _base(noise=UniformNoise(4.0))
        b = _base(noise=UniformNoise(4.0))
        assert a is not b
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_sensitive_to_every_behavioural_field(self):
        ref = config_fingerprint(_base())
        assert config_fingerprint(_base(message_bytes=128)) != ref
        assert config_fingerprint(_base(partitions=2)) != ref
        assert config_fingerprint(_base(compute_seconds=2e-4)) != ref
        assert config_fingerprint(_base(seed=99)) != ref
        assert config_fingerprint(_base(noise=UniformNoise(4.0))) != ref

    def test_noise_model_parameters_matter(self):
        a = config_fingerprint(_base(noise=UniformNoise(2.0)))
        b = config_fingerprint(_base(noise=UniformNoise(4.0)))
        c = config_fingerprint(_base(noise=GaussianNoise(4.0)))
        assert len({a, b, c}) == 3

    def test_is_hex_sha256(self):
        fp = config_fingerprint(_base())
        assert len(fp) == 64
        int(fp, 16)


class TestDerivedSeeds:
    def test_deterministic(self):
        assert derive_cell_seed(7, 1024, 4) == derive_cell_seed(7, 1024, 4)

    def test_decorrelates_cells_and_base_seeds(self):
        seeds = {derive_cell_seed(7, m, n)
                 for m in SIZES for n in COUNTS}
        seeds.add(derive_cell_seed(8, 1024, 4))
        assert len(seeds) == 5

    def test_plan_cells_uses_derived_seeds(self):
        base = _base(seed=7)
        cells = plan_cells(base, SIZES, COUNTS)
        for cell in cells:
            assert cell.seed == derive_cell_seed(
                7, cell.message_bytes, cell.partitions)

    def test_plan_cells_can_keep_base_seed(self):
        cells = plan_cells(_base(seed=7), SIZES, COUNTS,
                           derive_seeds=False)
        assert {c.seed for c in cells} == {7}

    def test_plan_cells_skips_unsplittable_and_rejects_empty(self):
        cells = plan_cells(_base(), [2], [1, 4])
        assert [(c.message_bytes, c.partitions) for c in cells] == [(2, 1)]
        with pytest.raises(ConfigurationError):
            plan_cells(_base(), [], COUNTS)


# ---------------------------------------------------------------------------
# Parallel vs serial equivalence
# ---------------------------------------------------------------------------

class TestParallelEquivalence:
    def test_jobs4_bit_identical_to_jobs1(self):
        base = _base(noise=UniformNoise(4.0), seed=11)
        serial = sweep_ptp(base, SIZES, COUNTS, jobs=1)
        parallel = sweep_ptp(base, SIZES, COUNTS, jobs=4)
        for metric in METRIC_NAMES:
            assert serial.series(metric) == parallel.series(metric)
        # Not just metric-identical: the *full instrumentation streams*
        # (every event, in order, with bit-exact timestamps) match.
        for m in SIZES:
            for n in COUNTS:
                s = serial.point(m, n).result
                p = parallel.point(m, n).result
                assert s.event_digest is not None
                assert s.event_digest == p.event_digest

    def test_parallel_samples_match_exactly(self):
        base = _base(noise=UniformNoise(4.0), seed=11)
        serial = sweep_ptp(base, SIZES, COUNTS, jobs=1)
        parallel = sweep_ptp(base, SIZES, COUNTS, jobs=2)
        for m in SIZES:
            for n in COUNTS:
                s = serial.point(m, n).result.samples
                p = parallel.point(m, n).result.samples
                assert [x.timeline for x in s] == [x.timeline for x in p]
                assert [x.metrics for x in s] == [x.metrics for x in p]

    def test_stats_attached(self):
        sweep = sweep_ptp(_base(), SIZES, COUNTS, jobs=2)
        assert isinstance(sweep.stats, SweepStats)
        assert sweep.stats.jobs == 2
        assert sweep.stats.total_cells == 4
        assert sweep.stats.executed == 4
        assert sweep.stats.cache_hits == 0
        assert "4 cells" in sweep.stats.describe()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cells(plan_cells(_base(), SIZES, COUNTS), jobs=0)


# ---------------------------------------------------------------------------
# The result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_hit_roundtrips_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(noise=UniformNoise(4.0)), [1024], [4])[0]
        fresh = run_ptp_benchmark(config)
        cache.put(config, fresh)
        loaded = cache.get(config)
        assert loaded is not None
        assert [s.timeline for s in loaded.samples] == \
            [s.timeline for s in fresh.samples]
        assert [s.metrics for s in loaded.samples] == \
            [s.metrics for s in fresh.samples]

    def test_cached_rerun_executes_zero_simulations(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        base = _base(seed=3)
        first = sweep_ptp(base, SIZES, COUNTS, cache=cache)
        assert first.stats.executed == 4
        assert first.stats.cache_hits == 0
        assert len(cache) == 4

        EXECUTIONS.reset()
        second = sweep_ptp(base, SIZES, COUNTS, cache=cache)
        assert EXECUTIONS.value == 0  # zero simulations ran
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 4
        for metric in METRIC_NAMES:
            assert second.series(metric) == first.series(metric)
        for m in SIZES:
            for n in COUNTS:
                fresh = first.point(m, n).result
                cached = second.point(m, n).result
                assert fresh.event_digest is not None
                assert cached.event_digest == fresh.event_digest

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep_ptp(_base(seed=3), SIZES, COUNTS, cache=cache)
        EXECUTIONS.reset()
        sweep_ptp(_base(seed=3, compute_seconds=2e-4), SIZES, COUNTS,
                  cache=cache)
        assert EXECUTIONS.value == 4  # every cell re-simulated
        assert len(cache) == 8

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        path = cache._path(config_fingerprint(config))
        blob = bytearray(path.read_bytes())
        # The envelope is ``<4sHH``: magic, schema, label length.  Patch
        # the schema halfword to a future version; the entry must read
        # as a miss, never as a crash.
        blob[4:6] = struct.pack("<H", CACHE_SCHEMA_VERSION + 1)
        path.write_bytes(bytes(blob))
        assert cache.get(config) is None
        assert cache.misses == 1

    def test_corrupt_envelope_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        path = cache._path(config_fingerprint(config))
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])  # truncated frame
        assert cache.get(config) is None
        assert cache.misses == 1

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert len(cache) == 0
        sweep_ptp(_base(), [1024], [1, 4], cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_path_argument_coerced(self, tmp_path):
        cells = plan_cells(_base(), [1024], [1])
        run_cells(cells, jobs=1, cache=str(tmp_path / "cache"))
        _, stats = run_cells(cells, jobs=1, cache=str(tmp_path / "cache"))
        assert stats.cache_hits == 1

    def test_parallel_run_populates_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        base = _base(seed=5)
        sweep_ptp(base, SIZES, COUNTS, jobs=2, cache=cache)
        assert len(cache) == 4
        EXECUTIONS.reset()
        again = sweep_ptp(base, SIZES, COUNTS, jobs=2, cache=cache)
        assert EXECUTIONS.value == 0
        assert again.stats.cache_hits == 4


# ---------------------------------------------------------------------------
# The in-process memory tier and result provenance (cache schema v4)
# ---------------------------------------------------------------------------

class TestMemoryTier:
    def test_repeat_get_served_from_memory(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        first = cache.get(config)     # disk read, validates + remembers
        second = cache.get(config)    # memory tier, no JSON parse
        assert first is not None and second is not None
        assert cache.memory_hits == 1
        assert second.event_digest == first.event_digest
        assert [s.timeline for s in second.samples] == \
            [s.timeline for s in first.samples]

    def test_memory_tier_returns_fresh_objects(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        a = cache.get(config)
        b = cache.get(config)
        assert a is not b
        a.samples.clear()             # mutating one copy must not leak
        assert cache.get(config).samples

    def test_put_invalidates_memory_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(noise=UniformNoise(4.0)), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        cache.get(config)
        fresh = run_ptp_benchmark(config)
        cache.put(config, fresh)      # overwrite drops the memory entry
        loaded = cache.get(config)
        assert cache.memory_hits == 0  # both gets re-read the disk file
        assert loaded.event_digest == fresh.event_digest

    def test_memory_tier_is_bounded(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", memory_entries=2)
        cells = plan_cells(_base(), [1024, 65536], [1, 4])
        for config in cells:
            cache.put(config, run_ptp_benchmark(config))
            cache.get(config)
        assert len(cache._memory) == 2  # LRU evicted the first two

    def test_clear_empties_memory_tier(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        cache.get(config)
        cache.clear()
        assert cache.get(config) is None


class TestCacheCounters:
    def test_clear_resets_counters_with_the_store(self, tmp_path):
        # Regression: clear() used to leave hit/miss history describing
        # entries that no longer existed.
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        assert cache.get(config) is None          # miss
        cache.put(config, run_ptp_benchmark(config))
        cache.get(config)                         # disk hit
        cache.get(config)                         # memory hit
        assert (cache.hits, cache.misses, cache.stores,
                cache.memory_hits) == (2, 1, 1, 1)
        cache.clear()
        assert (cache.hits, cache.misses, cache.stores,
                cache.memory_hits, cache.singleflight_hits) == \
            (0, 0, 0, 0, 0)
        assert cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "stores": 0,
            "memory_hits": 0, "singleflight_hits": 0,
            "memory_entries": 0, "inflight": 0}

    def test_stats_snapshot_and_describe(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        cache.get(config)
        cache.get(config)
        s = cache.stats()
        assert s["entries"] == 1
        assert s["hits"] == 2
        assert s["memory_hits"] == 1
        assert s["stores"] == 1
        assert s["memory_entries"] == 1
        line = cache.describe()
        assert "1 entry(ies)" in line
        assert "2 hits (1 memory)" in line
        assert "single-flight" not in line  # only shown when nonzero


# ---------------------------------------------------------------------------
# Single-flight: identical uncached cells execute exactly once
# ---------------------------------------------------------------------------

class TestSingleFlight:
    def test_duplicate_cells_in_one_grid_execute_once(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(seed=4), [1024], [1])[0]
        cells = [config] * 5
        EXECUTIONS.reset()
        results, stats = run_cells(cells, jobs=1, cache=cache)
        assert EXECUTIONS.value == 1
        assert stats.executed == 1
        assert stats.singleflight_hits == len(cells) - 1
        assert all(r.event_digest == results[0].event_digest
                   for r in results)
        assert results[0].event_digest is not None
        assert "4 single-flight" in stats.describe()

    def test_duplicates_collapse_without_a_cache(self):
        config = plan_cells(_base(seed=4), [1024], [1])[0]
        EXECUTIONS.reset()
        results, stats = run_cells([config] * 3, jobs=1)
        assert EXECUTIONS.value == 1
        assert stats.singleflight_hits == 2
        assert results[0] is results[1] is results[2]

    def test_claim_join_and_abandon(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        fingerprint = config_fingerprint(config)
        assert cache.claim(fingerprint) is None     # first caller leads
        flight = cache.claim(fingerprint)
        assert flight is not None                   # second caller joins
        result = run_ptp_benchmark(config)
        cache.put(config, result)                   # leader publishes
        joined = cache.join(flight, config, timeout=5.0)
        assert joined is not None
        assert joined.event_digest == result.event_digest
        assert cache.singleflight_hits == 1
        # A fresh claim after put leads again (the flight is gone).
        assert cache.claim(fingerprint) is None
        follower = cache.claim(fingerprint)
        cache.abandon(fingerprint)                  # leader gives up
        assert cache.join(follower, config, timeout=5.0) is None

    def test_concurrent_sweeps_share_one_execution(self, tmp_path):
        """Two sweeps, two pools, one cache: each cell executes once."""
        from repro.core import WorkerPool

        cells = plan_cells(_base(seed=9), SIZES, COUNTS)
        serial, _ = run_cells(cells, jobs=1)
        cache = ResultCache(tmp_path / "cache")
        pools = {"lead": WorkerPool(2), "follow": WorkerPool(2)}
        outputs = {}

        def follow():
            # Enter only once the lead sweep holds every claim, so each
            # of this sweep's cells deterministically joins an in-flight
            # computation rather than racing the claim.
            deadline = time.monotonic() + 60.0
            while len(cache._inflight) < len(cells):
                assert time.monotonic() < deadline, "lead never claimed"
                time.sleep(0.001)
            outputs["follow"] = run_cells(cells, jobs=2, cache=cache,
                                          pool=pools["follow"])

        try:
            follower = threading.Thread(target=follow)
            follower.start()
            outputs["lead"] = run_cells(cells, jobs=2, cache=cache,
                                        pool=pools["lead"])
            follower.join(timeout=120.0)
            assert not follower.is_alive()
        finally:
            for p in pools.values():
                p.shutdown()

        lead_results, lead_stats = outputs["lead"]
        follow_results, follow_stats = outputs["follow"]
        # Between them the sweeps executed each unique cell exactly once.
        assert lead_stats.executed == len(cells)
        assert follow_stats.executed == 0
        assert follow_stats.singleflight_hits + follow_stats.cache_hits \
            == len(cells)
        assert cache.stats()["inflight"] == 0
        for got in (lead_results, follow_results):
            assert [r.event_digest for r in got] == \
                [r.event_digest for r in serial]


# ---------------------------------------------------------------------------
# v4 -> v5 cache migration
# ---------------------------------------------------------------------------

class TestCacheMigration:
    @staticmethod
    def _legacy_record(root, config, result, sharded):
        """Hand-write a v4 JSON record exactly as PR 8's put() did."""
        from repro.core.persistence import result_to_dict
        fingerprint = config_fingerprint(config)
        payload = {"schema": 4, "fingerprint": fingerprint,
                   "label": config.label(),
                   "result": result_to_dict(result)}
        if sharded:
            path = root / fingerprint[:2] / f"{fingerprint}.json"
        else:
            path = root / f"{fingerprint}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload))
        return path

    def test_migrates_flat_and_sharded_v4_layouts(self, tmp_path):
        root = tmp_path / "cache"
        cells = plan_cells(_base(seed=3), SIZES, COUNTS)
        fresh = [run_ptp_benchmark(c) for c in cells]
        old_paths = [self._legacy_record(root, config, result,
                                         sharded=i % 2 == 0)
                     for i, (config, result) in
                     enumerate(zip(cells, fresh))]
        cache = ResultCache(root)
        assert len(cache) == 0            # v4 entries invisible to v5
        assert cache.migrate() == len(cells)
        assert len(cache) == len(cells)
        for path in old_paths:
            assert not path.exists()      # originals removed

        # Every migrated fingerprint resolves with zero recomputation.
        EXECUTIONS.reset()
        again, stats = run_cells(cells, jobs=1, cache=cache)
        assert EXECUTIONS.value == 0
        assert stats.executed == 0
        assert stats.cache_hits == len(cells)
        for a, b in zip(again, fresh):
            assert a.event_digest == b.event_digest
            assert [s.timeline for s in a.samples] == \
                [s.timeline for s in b.samples]

    def test_migrate_skips_foreign_and_older_records(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir(parents=True)
        (root / "junk.json").write_text("{not json")
        (root / "old.json").write_text(json.dumps(
            {"schema": 3, "fingerprint": "ab" * 32, "result": {}}))
        cache = ResultCache(root)
        assert cache.migrate() == 0
        assert (root / "junk.json").exists()   # left untouched
        assert (root / "old.json").exists()

    def test_migrate_is_idempotent(self, tmp_path):
        root = tmp_path / "cache"
        config = plan_cells(_base(seed=3), [1024], [1])[0]
        self._legacy_record(root, config, run_ptp_benchmark(config),
                            sharded=True)
        cache = ResultCache(root)
        assert cache.migrate() == 1
        assert cache.migrate() == 0        # nothing left to upgrade
        assert cache.get(config) is not None


class TestFingerprintMemoization:
    def test_memoized_on_the_instance(self):
        config = _base()
        fp = config_fingerprint(config)
        assert config.__dict__["_fingerprint"] == fp
        assert config_fingerprint(config) == fp

    def test_salt_does_not_pollute_the_memo(self):
        config = _base()
        plain = config_fingerprint(config)
        salted = config_fingerprint(config, salt="planner|x")
        assert salted != plain
        assert config.__dict__["_fingerprint"] == plain
        assert config_fingerprint(config) == plain

    def test_salted_fingerprints_distinct(self):
        config = _base()
        assert config_fingerprint(config, salt="a") != \
            config_fingerprint(config, salt="b")


class TestProvenanceRoundTrip:
    def test_trials_and_source_survive_the_cache(self, tmp_path):
        from repro.metrics import AdaptiveTrialPlanner
        cache = ResultCache(tmp_path / "cache")
        planner = AdaptiveTrialPlanner(ci_target=1e-12, min_trials=2,
                                       max_trials=3, batch=1)
        config = plan_cells(_base(noise=UniformNoise(4.0)), [1024], [4])[0]
        salt = planner.cache_salt()
        merged = planner.run_cell(config)
        assert merged.trials == 3
        cache.put(config, merged, salt=salt)
        loaded = cache.get(config, salt=salt)
        assert loaded is not None
        assert loaded.source == "des"
        assert loaded.trials == 3
        assert loaded.event_digest == merged.event_digest

    def test_trials_aggregate_across_worker_processes(self):
        """--jobs N must report the same trial total as a serial run."""
        from repro.metrics import AdaptiveTrialPlanner
        base = _base(noise=UniformNoise(4.0), seed=11)
        planner = AdaptiveTrialPlanner(ci_target=1e-12, min_trials=2,
                                       max_trials=3, batch=1)
        cells = plan_cells(base, SIZES, COUNTS)
        serial, s_stats = run_cells(cells, jobs=1, planner=planner)
        parallel, p_stats = run_cells(cells, jobs=2, planner=planner)
        assert s_stats.trials == sum(r.trials for r in serial) > 4
        assert p_stats.trials == s_stats.trials
        for s, p in zip(serial, parallel):
            assert s.trials == p.trials
            assert s.event_digest == p.event_digest


# ---------------------------------------------------------------------------
# Result-plane concurrency regressions
# ---------------------------------------------------------------------------

class TestResultPlaneConcurrency:
    def test_stats_does_not_hold_lock_during_disk_count(self, tmp_path,
                                                        monkeypatch):
        """stats() must count disk entries outside the cache lock.

        Regression: stats() used to call ``len(self)`` — a glob over the
        whole shard tree — while holding ``self._lock``, so a slow disk
        walk (or just a big cache) stalled every concurrent claim/put
        behind it.  A stats() stuck mid-count must not block claim().
        """
        cache = ResultCache(tmp_path / "cache")
        entered = threading.Event()
        release = threading.Event()

        def slow_len(self):
            entered.set()
            assert release.wait(30.0), "test never released the count"
            return 0

        # Dunder lookups go through the type, so patch the class.
        monkeypatch.setattr(ResultCache, "__len__", slow_len)
        stats_thread = threading.Thread(target=cache.stats)
        stats_thread.start()
        try:
            assert entered.wait(10.0), "stats() never reached the count"
            claimed = threading.Event()

            def use_lock():
                cache.claim("ab" * 32)
                claimed.set()

            threading.Thread(target=use_lock, daemon=True).start()
            assert claimed.wait(5.0), \
                "claim() blocked behind stats()'s disk walk"
        finally:
            release.set()
            stats_thread.join(timeout=10.0)

    def test_join_times_out_on_a_leader_that_never_publishes(self,
                                                             tmp_path):
        """A dead leader must not park joiners forever (bounded join)."""
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        fingerprint = config_fingerprint(config)
        assert cache.claim(fingerprint) is None     # leader, never puts
        flight = cache.claim(fingerprint)
        t0 = time.monotonic()
        assert cache.join(flight, config, timeout=0.2) is None
        assert time.monotonic() - t0 < 5.0

    def test_engine_recomputes_after_join_timeout_and_wakes_stragglers(
            self, tmp_path):
        """run_cells falls back to computing when its join times out.

        The recompute's put() must also pop the stale flight and wake
        any *other* joiner still blocked on it — with the result, and
        exactly once.
        """
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(seed=21), [1024], [1])[0]
        fingerprint = config_fingerprint(config)
        assert cache.claim(fingerprint) is None     # leader dies silently
        stale = cache.claim(fingerprint)
        wakes = []
        straggler = threading.Thread(
            target=lambda: wakes.append(
                cache.join(stale, config, timeout=60.0)))
        straggler.start()

        results, stats = run_cells([config], jobs=1, cache=cache,
                                   join_timeout=0.2)
        straggler.join(timeout=30.0)
        assert not straggler.is_alive(), "straggler never woke"
        assert stats.executed == 1                  # the fallback compute
        assert results[0].event_digest is not None
        assert wakes == [results[0]] or (
            wakes[0].event_digest == results[0].event_digest)
        assert cache.stats()["inflight"] == 0
        # The flight is gone: a fresh claim leads again.
        assert cache.claim(fingerprint) is None

    def test_leader_raising_mid_trial_wakes_joiners_exactly_once(
            self, tmp_path, monkeypatch):
        """A leader that raises abandons its claims and wakes joiners.

        The leader is a real ``run_cells`` sweep whose trial crashes
        *while joiners are registered on its claim* — the crash is
        gated on every joiner having joined, so the abandon path is
        exercised with real waiters, not an empty flight.
        """
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(seed=22), [1024], [1])[0]
        fingerprint = config_fingerprint(config)

        n = 4
        wakes = []
        wakes_lock = threading.Lock()
        registered = threading.Barrier(n + 1)

        def join_one():
            # Wait for the sweep to claim leadership, then ride it.
            deadline = time.monotonic() + 30.0
            while fingerprint not in cache._inflight:
                assert time.monotonic() < deadline, "leader never claimed"
                time.sleep(0.001)
            flight = cache.claim(fingerprint)
            assert flight is not None
            registered.wait(timeout=30.0)
            got = cache.join(flight, config, timeout=60.0)
            with wakes_lock:
                wakes.append(got)

        import repro.core.parallel as parallel_mod

        def boom(config, planner=None):
            # "Mid-trial": the leader holds the claim, every joiner is
            # blocked on it, and then the trial crashes.
            registered.wait(timeout=30.0)
            raise RuntimeError("mid-trial crash")

        monkeypatch.setattr(parallel_mod, "_run_des_cell", boom)
        joiners = [threading.Thread(target=join_one) for _ in range(n)]
        for thread in joiners:
            thread.start()

        # The leader's sweep raises mid-trial; run_cells must abandon.
        with pytest.raises(RuntimeError):
            run_cells([config], jobs=1, cache=cache)
        for thread in joiners:
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "joiner never woke"
        # Exactly one wake per joiner, each with "recompute yourself".
        assert wakes == [None] * n
        assert cache.stats()["inflight"] == 0
        # And the flight is really gone: a fresh sweep leads and runs.
        monkeypatch.undo()
        results, stats = run_cells([config], jobs=1, cache=cache)
        assert stats.executed == 1
        assert results[0].event_digest is not None
