"""The parallel sweep engine and the content-addressed result cache."""

import json

import pytest

from repro.core import (METRIC_NAMES, PtpBenchmarkConfig, ResultCache,
                        SweepStats, config_fingerprint, derive_cell_seed,
                        plan_cells, run_cells, run_ptp_benchmark, sweep_ptp)
from repro.core.parallel import CACHE_SCHEMA_VERSION
from repro.core.runner import EXECUTIONS
from repro.errors import ConfigurationError
from repro.noise import GaussianNoise, UniformNoise


def _base(**overrides):
    defaults = dict(message_bytes=64, partitions=1,
                    compute_seconds=1e-4, iterations=2)
    defaults.update(overrides)
    return PtpBenchmarkConfig(**defaults)


SIZES = [1024, 65536]
COUNTS = [1, 4]


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_instances(self):
        a = _base(noise=UniformNoise(4.0))
        b = _base(noise=UniformNoise(4.0))
        assert a is not b
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_sensitive_to_every_behavioural_field(self):
        ref = config_fingerprint(_base())
        assert config_fingerprint(_base(message_bytes=128)) != ref
        assert config_fingerprint(_base(partitions=2)) != ref
        assert config_fingerprint(_base(compute_seconds=2e-4)) != ref
        assert config_fingerprint(_base(seed=99)) != ref
        assert config_fingerprint(_base(noise=UniformNoise(4.0))) != ref

    def test_noise_model_parameters_matter(self):
        a = config_fingerprint(_base(noise=UniformNoise(2.0)))
        b = config_fingerprint(_base(noise=UniformNoise(4.0)))
        c = config_fingerprint(_base(noise=GaussianNoise(4.0)))
        assert len({a, b, c}) == 3

    def test_is_hex_sha256(self):
        fp = config_fingerprint(_base())
        assert len(fp) == 64
        int(fp, 16)


class TestDerivedSeeds:
    def test_deterministic(self):
        assert derive_cell_seed(7, 1024, 4) == derive_cell_seed(7, 1024, 4)

    def test_decorrelates_cells_and_base_seeds(self):
        seeds = {derive_cell_seed(7, m, n)
                 for m in SIZES for n in COUNTS}
        seeds.add(derive_cell_seed(8, 1024, 4))
        assert len(seeds) == 5

    def test_plan_cells_uses_derived_seeds(self):
        base = _base(seed=7)
        cells = plan_cells(base, SIZES, COUNTS)
        for cell in cells:
            assert cell.seed == derive_cell_seed(
                7, cell.message_bytes, cell.partitions)

    def test_plan_cells_can_keep_base_seed(self):
        cells = plan_cells(_base(seed=7), SIZES, COUNTS,
                           derive_seeds=False)
        assert {c.seed for c in cells} == {7}

    def test_plan_cells_skips_unsplittable_and_rejects_empty(self):
        cells = plan_cells(_base(), [2], [1, 4])
        assert [(c.message_bytes, c.partitions) for c in cells] == [(2, 1)]
        with pytest.raises(ConfigurationError):
            plan_cells(_base(), [], COUNTS)


# ---------------------------------------------------------------------------
# Parallel vs serial equivalence
# ---------------------------------------------------------------------------

class TestParallelEquivalence:
    def test_jobs4_bit_identical_to_jobs1(self):
        base = _base(noise=UniformNoise(4.0), seed=11)
        serial = sweep_ptp(base, SIZES, COUNTS, jobs=1)
        parallel = sweep_ptp(base, SIZES, COUNTS, jobs=4)
        for metric in METRIC_NAMES:
            assert serial.series(metric) == parallel.series(metric)
        # Not just metric-identical: the *full instrumentation streams*
        # (every event, in order, with bit-exact timestamps) match.
        for m in SIZES:
            for n in COUNTS:
                s = serial.point(m, n).result
                p = parallel.point(m, n).result
                assert s.event_digest is not None
                assert s.event_digest == p.event_digest

    def test_parallel_samples_match_exactly(self):
        base = _base(noise=UniformNoise(4.0), seed=11)
        serial = sweep_ptp(base, SIZES, COUNTS, jobs=1)
        parallel = sweep_ptp(base, SIZES, COUNTS, jobs=2)
        for m in SIZES:
            for n in COUNTS:
                s = serial.point(m, n).result.samples
                p = parallel.point(m, n).result.samples
                assert [x.timeline for x in s] == [x.timeline for x in p]
                assert [x.metrics for x in s] == [x.metrics for x in p]

    def test_stats_attached(self):
        sweep = sweep_ptp(_base(), SIZES, COUNTS, jobs=2)
        assert isinstance(sweep.stats, SweepStats)
        assert sweep.stats.jobs == 2
        assert sweep.stats.total_cells == 4
        assert sweep.stats.executed == 4
        assert sweep.stats.cache_hits == 0
        assert "4 cells" in sweep.stats.describe()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cells(plan_cells(_base(), SIZES, COUNTS), jobs=0)


# ---------------------------------------------------------------------------
# The result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_hit_roundtrips_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(noise=UniformNoise(4.0)), [1024], [4])[0]
        fresh = run_ptp_benchmark(config)
        cache.put(config, fresh)
        loaded = cache.get(config)
        assert loaded is not None
        assert [s.timeline for s in loaded.samples] == \
            [s.timeline for s in fresh.samples]
        assert [s.metrics for s in loaded.samples] == \
            [s.metrics for s in fresh.samples]

    def test_cached_rerun_executes_zero_simulations(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        base = _base(seed=3)
        first = sweep_ptp(base, SIZES, COUNTS, cache=cache)
        assert first.stats.executed == 4
        assert first.stats.cache_hits == 0
        assert len(cache) == 4

        EXECUTIONS.reset()
        second = sweep_ptp(base, SIZES, COUNTS, cache=cache)
        assert EXECUTIONS.value == 0  # zero simulations ran
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 4
        for metric in METRIC_NAMES:
            assert second.series(metric) == first.series(metric)
        for m in SIZES:
            for n in COUNTS:
                fresh = first.point(m, n).result
                cached = second.point(m, n).result
                assert fresh.event_digest is not None
                assert cached.event_digest == fresh.event_digest

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        sweep_ptp(_base(seed=3), SIZES, COUNTS, cache=cache)
        EXECUTIONS.reset()
        sweep_ptp(_base(seed=3, compute_seconds=2e-4), SIZES, COUNTS,
                  cache=cache)
        assert EXECUTIONS.value == 4  # every cell re-simulated
        assert len(cache) == 8

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        path = cache._path(config_fingerprint(config))
        data = json.loads(path.read_text())
        data["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        assert cache.get(config) is None
        assert cache.misses == 1

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert len(cache) == 0
        sweep_ptp(_base(), [1024], [1, 4], cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_path_argument_coerced(self, tmp_path):
        cells = plan_cells(_base(), [1024], [1])
        run_cells(cells, jobs=1, cache=str(tmp_path / "cache"))
        _, stats = run_cells(cells, jobs=1, cache=str(tmp_path / "cache"))
        assert stats.cache_hits == 1

    def test_parallel_run_populates_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        base = _base(seed=5)
        sweep_ptp(base, SIZES, COUNTS, jobs=2, cache=cache)
        assert len(cache) == 4
        EXECUTIONS.reset()
        again = sweep_ptp(base, SIZES, COUNTS, jobs=2, cache=cache)
        assert EXECUTIONS.value == 0
        assert again.stats.cache_hits == 4


# ---------------------------------------------------------------------------
# The in-process memory tier and result provenance (cache schema v4)
# ---------------------------------------------------------------------------

class TestMemoryTier:
    def test_repeat_get_served_from_memory(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        first = cache.get(config)     # disk read, validates + remembers
        second = cache.get(config)    # memory tier, no JSON parse
        assert first is not None and second is not None
        assert cache.memory_hits == 1
        assert second.event_digest == first.event_digest
        assert [s.timeline for s in second.samples] == \
            [s.timeline for s in first.samples]

    def test_memory_tier_returns_fresh_objects(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        a = cache.get(config)
        b = cache.get(config)
        assert a is not b
        a.samples.clear()             # mutating one copy must not leak
        assert cache.get(config).samples

    def test_put_invalidates_memory_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(noise=UniformNoise(4.0)), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        cache.get(config)
        fresh = run_ptp_benchmark(config)
        cache.put(config, fresh)      # overwrite drops the memory entry
        loaded = cache.get(config)
        assert cache.memory_hits == 0  # both gets re-read the disk file
        assert loaded.event_digest == fresh.event_digest

    def test_memory_tier_is_bounded(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", memory_entries=2)
        cells = plan_cells(_base(), [1024, 65536], [1, 4])
        for config in cells:
            cache.put(config, run_ptp_benchmark(config))
            cache.get(config)
        assert len(cache._memory) == 2  # LRU evicted the first two

    def test_clear_empties_memory_tier(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = plan_cells(_base(), [1024], [1])[0]
        cache.put(config, run_ptp_benchmark(config))
        cache.get(config)
        cache.clear()
        assert cache.get(config) is None


class TestFingerprintMemoization:
    def test_memoized_on_the_instance(self):
        config = _base()
        fp = config_fingerprint(config)
        assert config.__dict__["_fingerprint"] == fp
        assert config_fingerprint(config) == fp

    def test_salt_does_not_pollute_the_memo(self):
        config = _base()
        plain = config_fingerprint(config)
        salted = config_fingerprint(config, salt="planner|x")
        assert salted != plain
        assert config.__dict__["_fingerprint"] == plain
        assert config_fingerprint(config) == plain

    def test_salted_fingerprints_distinct(self):
        config = _base()
        assert config_fingerprint(config, salt="a") != \
            config_fingerprint(config, salt="b")


class TestProvenanceRoundTrip:
    def test_trials_and_source_survive_the_cache(self, tmp_path):
        from repro.metrics import AdaptiveTrialPlanner
        cache = ResultCache(tmp_path / "cache")
        planner = AdaptiveTrialPlanner(ci_target=1e-12, min_trials=2,
                                       max_trials=3, batch=1)
        config = plan_cells(_base(noise=UniformNoise(4.0)), [1024], [4])[0]
        salt = planner.cache_salt()
        merged = planner.run_cell(config)
        assert merged.trials == 3
        cache.put(config, merged, salt=salt)
        loaded = cache.get(config, salt=salt)
        assert loaded is not None
        assert loaded.source == "des"
        assert loaded.trials == 3
        assert loaded.event_digest == merged.event_digest

    def test_trials_aggregate_across_worker_processes(self):
        """--jobs N must report the same trial total as a serial run."""
        from repro.metrics import AdaptiveTrialPlanner
        base = _base(noise=UniformNoise(4.0), seed=11)
        planner = AdaptiveTrialPlanner(ci_target=1e-12, min_trials=2,
                                       max_trials=3, batch=1)
        cells = plan_cells(base, SIZES, COUNTS)
        serial, s_stats = run_cells(cells, jobs=1, planner=planner)
        parallel, p_stats = run_cells(cells, jobs=2, planner=planner)
        assert s_stats.trials == sum(r.trials for r in serial) > 4
        assert p_stats.trials == s_stats.trials
        for s, p in zip(serial, parallel):
            assert s.trials == p.trials
            assert s.event_digest == p.event_digest
