#!/usr/bin/env python
"""Load-test the sweep daemon: concurrent clients, mixed hot/cold requests.

Replays thousands of trial requests from many concurrent client threads
against a running (or ``--boot``-spawned) daemon and then *audits* the
run against the service's own contract:

* **zero failed requests** — every reply is a 200 with a digest;
* **exactly one execution per unique uncached fingerprint** — the
  server's ``/stats`` counters must show ``executed == unique configs``
  no matter how many clients raced on each config (the cache's
  single-flight plus the scheduler's batching absorb the rest);
* **cache hit-rate at least the arithmetic floor** — with R requests
  over U unique configs, ``(cache_hits + singleflight_hits) / R`` must
  be exactly ``(R - U) / R``;
* **digest coherence** — every reply for one fingerprint carries the
  same event digest.

The request mix is deterministic (seeded shuffle per client) so a run
is reproducible; priorities are mixed to exercise the queue ordering.

Usage::

    python scripts/load_test.py --boot            # spawn daemon, replay, audit
    python scripts/load_test.py --boot --smoke    # the CI gate (fast configs)
    python scripts/load_test.py --url http://127.0.0.1:8642   # extant daemon

Exit status: 0 when every audit passes, 1 otherwise.
"""

import argparse
import collections
import json
import os
import pathlib
import random
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.protocol import ServiceError  # noqa: E402


def build_universe(unique, smoke):
    """The distinct configs of the replay (each one cache fingerprint)."""
    configs = []
    iterations = 2 if smoke else 3
    compute = 1e-4 if smoke else 5e-4
    sizes = [64, 128, 256, 512, 1024, 4096]
    counts = [1, 2, 4, 8]
    for i in range(unique):
        configs.append({
            "message_bytes": sizes[i % len(sizes)],
            "partitions": counts[(i // len(sizes)) % len(counts)],
            "compute_seconds": compute,
            "iterations": iterations,
            "warmup": 0,
            "seed": i,  # the seed rides the fingerprint: i varies the cell
        })
    return configs


def build_schedule(universe, requests, clients, seed=20220822):
    """Per-client request lists: every config hit by several clients."""
    per_client = requests // clients
    schedules = []
    for c in range(clients):
        rng = random.Random(seed + c)
        picks = [universe[rng.randrange(len(universe))]
                 for _ in range(per_client)]
        # Guarantee coverage: client c seeds the universe slice it owns,
        # so every unique config is requested at least once overall.
        owned = range(c, len(universe), clients)
        for slot, i in enumerate(owned):
            picks[slot % per_client] = universe[i]
        schedules.append(picks)
    return schedules


class ClientWorker(threading.Thread):
    """One synchronous client replaying its schedule."""

    def __init__(self, url, name, schedule, timeout):
        super().__init__(name=name, daemon=True)
        self.client = ServiceClient(url, client_id=name, timeout=timeout)
        self.schedule = schedule
        self.ok = 0
        self.errors = []
        self.digests = collections.defaultdict(set)

    def run(self):
        for i, config in enumerate(self.schedule):
            try:
                payload = self.client.trial(config, priority=i % 3)
            except ServiceError as exc:
                self.errors.append(f"{config}: {exc.status} {exc.reason}")
                continue
            self.ok += 1
            self.digests[payload["fingerprint"]].add(
                payload["event_digest"])


def boot_daemon(jobs, cache_dir, quota, verbose):
    """Spawn ``repro serve --port 0`` and wait for it to answer."""
    command = [sys.executable, "-m", "repro", "serve", "--port", "0",
               "--jobs", str(jobs), "--cache-dir", str(cache_dir),
               "--quota", str(quota)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        pathlib.Path(__file__).resolve().parent.parent / "src")
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    line = process.stdout.readline().strip()
    if "http://" not in line:
        process.terminate()
        raise SystemExit(f"daemon failed to boot: {line!r}")
    url = line.split()[2]
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=2.0):
                break
        except OSError:
            time.sleep(0.05)
    else:
        process.terminate()
        raise SystemExit("daemon never answered /healthz")
    if verbose:
        print(f"booted daemon at {url} (pid {process.pid})")
    return process, url


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="replay a mixed hot/cold request load and audit the "
                    "daemon's single-flight + cache accounting")
    parser.add_argument("--url", default=None,
                        help="daemon to test (default: --boot one)")
    parser.add_argument("--boot", action="store_true",
                        help="spawn a fresh daemon (ephemeral port, "
                             "fresh cache) for the duration of the run")
    parser.add_argument("--requests", type=int, default=5000,
                        help="total requests across all clients")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client threads")
    parser.add_argument("--unique", type=int, default=24,
                        help="distinct configs (unique fingerprints)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="daemon worker processes (with --boot)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI shape: 2000 requests, 8 clients, "
                             "fastest configs")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-request client timeout")
    parser.add_argument("--json", action="store_true",
                        help="emit the audit as JSON on stdout")
    args = parser.parse_args(argv)

    if args.smoke:
        args.requests = min(args.requests, 2000)
        args.clients = min(args.clients, 8)
        args.unique = min(args.unique, 16)
    if args.clients < 1 or args.requests < args.clients:
        parser.error("need at least one request per client")

    process = None
    cache_dir = None
    if args.url is None or args.boot:
        cache_dir = tempfile.mkdtemp(prefix="repro-load-cache-")
        process, args.url = boot_daemon(args.jobs, cache_dir,
                                        quota=max(16, args.clients),
                                        verbose=not args.json)
    try:
        return run_audit(args)
    finally:
        if process is not None:
            process.terminate()
            process.wait(timeout=10.0)


def run_audit(args):
    universe = build_universe(args.unique, args.smoke)
    schedules = build_schedule(universe, args.requests, args.clients)
    total = sum(len(s) for s in schedules)

    # Stats are daemon-lifetime counters; snapshot before the replay so
    # the audit sees only this run's deltas (a pre-warmed daemon still
    # audits correctly — its cache hits just replace executions).
    audit_client = ServiceClient(args.url, client_id="audit")
    before = audit_client.stats()["scheduler"]

    t0 = time.monotonic()
    workers = [ClientWorker(args.url, f"load-{i}", schedule, args.timeout)
               for i, schedule in enumerate(schedules)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.monotonic() - t0

    ok = sum(w.ok for w in workers)
    errors = [e for w in workers for e in w.errors]
    digests = collections.defaultdict(set)
    for worker in workers:
        for fingerprint, seen in worker.digests.items():
            digests[fingerprint].update(seen)
    incoherent = {fp: sorted(d) for fp, d in digests.items() if len(d) > 1}

    after = audit_client.stats()["scheduler"]
    scheduler = {name: after[name] - before[name] for name in after}
    shared = scheduler["cache_hits"] + scheduler["singleflight_hits"]
    hit_rate = shared / total if total else 0.0
    # Every request beyond the first touch of each fingerprint must have
    # been answered without executing.
    expected_rate = (total - len(universe)) / total if total else 0.0

    audit = {
        "requests": total,
        "clients": args.clients,
        "unique_configs": len(universe),
        "elapsed_seconds": round(elapsed, 3),
        "throughput_rps": round(ok / elapsed, 1) if elapsed else 0.0,
        "ok": ok,
        "failed": len(errors),
        "executed": scheduler["executed"],
        "cache_hits": scheduler["cache_hits"],
        "singleflight_hits": scheduler["singleflight_hits"],
        "hit_rate": round(hit_rate, 6),
        "expected_hit_rate": round(expected_rate, 6),
        "incoherent_digests": len(incoherent),
    }
    # Together these pin "exactly one execution per unique uncached
    # fingerprint": at most one execution per unique config, and every
    # request beyond the first touch answered from the shared store (on
    # a fresh --boot daemon that forces executed == unique exactly).
    checks = {
        "zero_failures": len(errors) == 0 and ok == total,
        "at_most_one_execution_per_fingerprint":
            scheduler["executed"] <= len(universe),
        "hit_rate_at_floor": shared >= total - len(universe),
        "digest_coherence": not incoherent,
    }
    audit["checks"] = checks
    passed = all(checks.values())

    if args.json:
        print(json.dumps(audit, indent=2))
    else:
        print(f"load test: {total} requests / {args.clients} clients / "
              f"{len(universe)} unique configs in {elapsed:.2f}s "
              f"({audit['throughput_rps']} req/s)")
        print(f"  executed {scheduler['executed']}, "
              f"cache hits {scheduler['cache_hits']}, "
              f"single-flight hits {scheduler['singleflight_hits']} "
              f"(hit rate {hit_rate:.4f}, floor {expected_rate:.4f})")
        for name, good in checks.items():
            print(f"  [{'PASS' if good else 'FAIL'}] {name}")
        for error in errors[:5]:
            print(f"  error: {error}")
        if incoherent:
            print(f"  incoherent: {incoherent}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
