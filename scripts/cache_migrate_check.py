#!/usr/bin/env python
"""CI gate for the v4 -> v5 cache migration.

Builds a legacy v4 cache in a temp directory — JSON records in both
historical layouts (flat ``<root>/<fp>.json`` and sharded
``<root>/ab/<fp>.json``), written exactly as PR 8's ``put()`` did — then
runs :meth:`ResultCache.migrate` and proves the upgrade end to end:

* every legacy record is upgraded (and its JSON original removed);
* every migrated fingerprint resolves for the config that produced it;
* a full sweep over the migrated cache reruns with **zero** simulator
  executions and bit-identical digests.

Exits nonzero on any violation.  Usage::

    python scripts/cache_migrate_check.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (PtpBenchmarkConfig, ResultCache,  # noqa: E402
                        config_fingerprint, plan_cells, result_to_dict,
                        run_cells, run_ptp_benchmark)
from repro.core.runner import EXECUTIONS  # noqa: E402

#: The legacy value-format generation this check builds by hand.
LEGACY_SCHEMA = 4


def write_legacy_record(root: pathlib.Path, config, result,
                        sharded: bool) -> pathlib.Path:
    """One v4 JSON cache record, byte-layout of the pre-binary cache."""
    fingerprint = config_fingerprint(config)
    payload = {
        "schema": LEGACY_SCHEMA,
        "fingerprint": fingerprint,
        "label": config.label(),
        "result": result_to_dict(result),
    }
    if sharded:
        path = root / fingerprint[:2] / f"{fingerprint}.json"
    else:
        path = root / f"{fingerprint}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def main() -> int:
    base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                              compute_seconds=1e-4, iterations=2)
    cells = plan_cells(base, [1024, 65536], [1, 4])
    fresh = [run_ptp_benchmark(config) for config in cells]

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-migrate-check-") as tmp:
        root = pathlib.Path(tmp) / "cache"
        legacy = [write_legacy_record(root, config, result,
                                      sharded=i % 2 == 0)
                  for i, (config, result) in enumerate(zip(cells, fresh))]

        cache = ResultCache(root)
        if len(cache) != 0:
            failures.append("v4 records counted as v5 entries before "
                            "migration")
        migrated = cache.migrate()
        print(f"migrated {migrated}/{len(cells)} legacy record(s)")
        if migrated != len(cells):
            failures.append(f"migrate() upgraded {migrated} of "
                            f"{len(cells)} records")
        if len(cache) != len(cells):
            failures.append(f"{len(cache)} binary entries on disk, "
                            f"expected {len(cells)}")
        leftovers = [p for p in legacy if p.exists()]
        if leftovers:
            failures.append(f"{len(leftovers)} JSON original(s) not "
                            f"removed: {leftovers}")

        # Every fingerprint must resolve, and a rerun over the migrated
        # cache must execute zero simulations.
        for config in cells:
            if cache.get(config) is None:
                failures.append(f"migrated fingerprint does not resolve "
                                f"for {config.label()}")
        EXECUTIONS.reset()
        again, stats = run_cells(cells, jobs=1, cache=cache)
        print(f"rerun over migrated cache: {stats.describe()}")
        if EXECUTIONS.value != 0:
            failures.append(f"rerun executed {EXECUTIONS.value} "
                            f"simulation(s), expected 0")
        if stats.cache_hits != len(cells):
            failures.append(f"rerun hit {stats.cache_hits} of "
                            f"{len(cells)} cells")
        for config, a, b in zip(cells, again, fresh):
            if a.event_digest != b.event_digest:
                failures.append(f"digest drift through migration for "
                                f"{config.label()}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("cache migrate check:", "FAIL" if failures else "PASS")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
