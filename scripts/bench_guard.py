#!/usr/bin/env python
"""Benchmark regression guard for the simulator kernel.

Times a fixed set of kernel workloads (mirroring
``benchmarks/bench_kernel.py``) with a plain stdlib timer and compares
them against the checked-in ``BENCH_BASELINE.json``.  Any kernel slower
than its budget — ``--threshold`` (default 2.0) times baseline, or the
tighter per-kernel entry in :data:`THRESHOLDS` (e.g. 1.05x for the
disabled-subscriber emission path of ``repro.obs``) — fails the run:
the CI gate behind the hot paths in ``repro.sim.core`` and
``repro.obs.bus``.

Raw wall times are meaningless across machines, so every measurement is
normalized by a calibration loop (pure-Python arithmetic) timed on the
same host: the stored numbers are "calibration units", roughly stable
across hardware generations, and the 2x threshold absorbs the rest.

Usage::

    python scripts/bench_guard.py              # compare against baseline
    python scripts/bench_guard.py --update     # rewrite the baseline
    python scripts/bench_guard.py --threshold 3.0 --json
    python scripts/bench_guard.py --json-out bench-report.json  # CI artifact
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import lint_source  # noqa: E402
from repro.core import (PtpBenchmarkConfig, PtpResult, SweepPoint,  # noqa: E402
                        SweepResult, run_ptp_benchmark)
from repro.obs import CounterSink, EventBus  # noqa: E402
from repro.obs.kinds import PART_PREADY  # noqa: E402
from repro.sim import Simulator, Store  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_BASELINE.json"

#: Schema marker so stale baselines fail loudly instead of silently.
#: 2: adds the repro.obs emission kernels.
#: 3: re-captured after the kernel fast paths (immediate-event ring,
#:    time-bucketed future queue, recycled sleeps, single-waiter
#:    dispatch, record-free emission) — the dispatch-heavy kernels run
#:    1.3-2x faster, so v2 budgets would hide large regressions.
#:    (Extended in place with the analytic/planner kernels, the
#:    worker-pool warm/cold pair, and the result-plane kernels — wire
#:    codec vs dict round-trip, sharded vs flat cache get, batched vs
#:    per-task dispatch — additive entries only, existing scores
#:    untouched, so no version bump.)
BASELINE_VERSION = 3


# ---------------------------------------------------------------------------
# Workloads — keep in sync with benchmarks/bench_kernel.py
# ---------------------------------------------------------------------------

def timeout_dispatch():
    sim = Simulator()
    for _ in range(1000):
        sim.timeout(1.0)
    sim.run()
    return sim.events_processed


def never_waited_timeouts():
    sim = Simulator()
    for _ in range(2000):
        sim.timeout(1.0)
    sim.run()
    return sim.events_processed


def process_switching():
    sim = Simulator()

    def proc():
        for _ in range(100):
            yield sim.timeout(1.0)

    for _ in range(10):
        sim.process(proc())
    sim.run()
    return sim.now


def store_handoff():
    sim = Simulator()
    store = Store(sim)

    def producer():
        for i in range(500):
            yield sim.timeout(0.001)
            store.put(i)

    def consumer():
        total = 0
        for _ in range(500):
            total += yield store.get()
        return total

    sim.process(producer())
    c = sim.process(consumer())
    sim.run()
    return c.value


def end_to_end_trial():
    cfg = PtpBenchmarkConfig(message_bytes=1 << 16, partitions=8,
                             compute_seconds=1e-3, iterations=1, warmup=0)
    return len(run_ptp_benchmark(cfg).samples)


def faults_off_overhead():
    """A clean trial driven through the fault-hook plumbing.

    The ``end_to_end_trial`` workload at 16 iterations with
    ``faults=None`` spelled out: the config rides the full hook path
    (NIC fault checks, transmit tracking test, frame-handler prelude)
    with every hook disabled.  Its baseline entry was captured by
    running this exact kernel, with this file's timing methodology, on
    the tree immediately *before* the fault subsystem landed — so the
    1.05x budget is exactly the promise "fault injection costs nothing
    when off".  16 iterations (vs 1) pushes the kernel to ~20ms so
    scheduler jitter amortizes below the 5% budget.
    """
    cfg = PtpBenchmarkConfig(message_bytes=1 << 16, partitions=8,
                             compute_seconds=1e-3, iterations=16, warmup=0,
                             faults=None)
    return len(run_ptp_benchmark(cfg).samples)


#: The cell behind ``paper_cell_trial``/``analytic_eval``: a real
#: paper-grid point (1 MiB × 32 partitions, 10 ms compute, warmup + 10
#: iterations) — big enough that the DES run amortizes timer noise, and
#: analytic-eligible so both engines answer the identical question.  The
#: iteration count matters for the ratio check: DES cost scales with
#: iterations while the closed form prices the timeline once.
_PAPER_CELL = dict(message_bytes=1 << 20, partitions=32,
                   compute_seconds=0.010, iterations=10, warmup=1)


def paper_cell_trial():
    """One full DES trial of the reference paper-grid cell."""
    return len(run_ptp_benchmark(PtpBenchmarkConfig(**_PAPER_CELL)).samples)


def analytic_eval():
    """The closed-form answer for the same cell (no simulator).

    Budgeted at 1/100th of ``paper_cell_trial`` *in the same run* (see
    :data:`RATIO_CHECKS`) — the tentpole promise that analytic-eligible
    cache misses are answered in microseconds.
    """
    from repro.analytic import evaluate_analytic
    result = evaluate_analytic(PtpBenchmarkConfig(**_PAPER_CELL))
    assert result.source == "analytic"
    return len(result.samples)


#: The cell behind the planner-overhead pair: noisy (so the planner does
#: not short-circuit) and 16 iterations so the ~20 ms runtime amortizes
#: scheduler jitter below the 5% budget, mirroring ``faults_off_overhead``.
_PLANNER_CELL = dict(message_bytes=1 << 16, partitions=8,
                     compute_seconds=1e-3, iterations=16, warmup=0)


def planner_reference():
    """The planner pair's control: the same noisy cell, no planner."""
    from repro.noise import UniformNoise
    cfg = PtpBenchmarkConfig(noise=UniformNoise(4.0), **_PLANNER_CELL)
    return len(run_ptp_benchmark(cfg).samples)


def planner_overhead():
    """A fixed-trial run through the adaptive planner's machinery.

    ``min_trials == max_trials == 1`` forces exactly the simulation
    ``planner_reference`` runs; everything else — the convergence check
    that never fires, the sample merge, the digest rehash — is pure
    planner overhead, budgeted at 1.05x the reference in the same run.
    """
    from repro.metrics import AdaptiveTrialPlanner
    from repro.noise import UniformNoise
    cfg = PtpBenchmarkConfig(noise=UniformNoise(4.0), **_PLANNER_CELL)
    planner = AdaptiveTrialPlanner(min_trials=1, max_trials=1)
    result = planner.run_cell(cfg)
    assert result.trials == 1
    return len(result.samples)


#: The tiny grid behind the pool pair: four cells cheap enough that a
#: per-sweep process spawn dominates, so the warm/cold ratio measures
#: exactly the boot-once payoff the pool exists for.
def _pool_cells():
    from repro.core import plan_cells
    base = PtpBenchmarkConfig(message_bytes=1024, partitions=1,
                              compute_seconds=1e-4, iterations=1, warmup=0)
    return plan_cells(base, [1024, 4096], [1, 2])


_WARM_POOL = None


def pool_cold_spawn():
    """A 4-cell sweep that spawns (and tears down) its pool every time.

    ``run_cells`` with ``jobs=2`` and no ``pool`` is the old
    per-sweep-executor behaviour: every call pays two process spawns,
    two worker boots, and the shutdown.
    """
    from repro.core import run_cells
    results, _ = run_cells(_pool_cells(), jobs=2)
    return len(results)


def pool_warm_sweep():
    """The same 4-cell sweep on a kept, already-warm worker pool.

    The pool boots on the first call — which ``_time_kernel`` runs
    untimed as its warmup — so the timed repeats measure exactly what a
    ``--pool keep`` re-sweep costs.  Budgeted at <= 0.5x
    ``pool_cold_spawn`` in the same run (:data:`RATIO_CHECKS`): if a
    warm re-sweep ever costs more than half a cold spawn-per-sweep, the
    persistent pool has lost its reason to exist.
    """
    global _WARM_POOL
    from repro.core import WorkerPool, run_cells
    if _WARM_POOL is None:
        _WARM_POOL = WorkerPool(2)
    results, _ = run_cells(_pool_cells(), jobs=2, pool=_WARM_POOL)
    return len(results)


#: Fixture behind the result-plane kernels: one realistic shipped result
#: (8 samples x 8 partitions) plus its fully resolved config.
_SHIP_FIXTURE = None


def _ship_fixture():
    global _SHIP_FIXTURE
    if _SHIP_FIXTURE is None:
        from repro.core import plan_cells
        base = PtpBenchmarkConfig(message_bytes=1 << 16, partitions=8,
                                  compute_seconds=1e-4, iterations=8,
                                  warmup=0)
        config = plan_cells(base, [1 << 16], [8])[0]
        _SHIP_FIXTURE = (config, run_ptp_benchmark(config))
    return _SHIP_FIXTURE


def ship_roundtrip_codec():
    """Result -> binary wire frame -> queue pickle -> result, 50 times.

    The fast path of the result plane: one struct-packed bytes object
    crosses the boundary.  Budgeted at <= 0.5x ``ship_roundtrip_dict``
    in the same run (:data:`RATIO_CHECKS`) — the codec must be at least
    twice as fast as the dict-of-lists shape it replaced.
    """
    import pickle
    from repro.core.wire import decode_result, encode_result
    config, result = _ship_fixture()
    n = 0
    for _ in range(50):
        frame = pickle.loads(pickle.dumps(encode_result(result)))
        n += len(decode_result(config, frame).samples)
    return n


def ship_roundtrip_dict():
    """The same round trip through the legacy dict fallback shape."""
    import pickle
    from repro.core.pool import result_from_shipped, ship_result
    config, result = _ship_fixture()
    n = 0
    for _ in range(50):
        shipped = pickle.loads(pickle.dumps(ship_result(result)))
        n += len(result_from_shipped(config, shipped).samples)
    return n


#: Fixture behind the cache-get pair: one entry stored through the
#: sharded cache, plus the identical wire frame at a flat shard-free
#: path (the bare read+decode reference).
_CACHE_FIXTURE = None


def _cache_fixture():
    global _CACHE_FIXTURE
    if _CACHE_FIXTURE is None:
        import tempfile
        from repro.core import ResultCache, config_fingerprint
        from repro.core.wire import encode_result
        config, result = _ship_fixture()
        root = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
        # memory_entries=0 forces every get down the disk path — the
        # kernel measures the sharded read+decode, not an OrderedDict hit.
        cache = ResultCache(root / "sharded", memory_entries=0)
        cache.put(config, result)
        flat = root / "flat.bin"
        flat.write_bytes(encode_result(result))
        _CACHE_FIXTURE = (cache, flat, config)
    return _CACHE_FIXTURE


def cache_hot_get():
    """100 hot gets through the full sharded-cache API (disk tier).

    Envelope validation, shard-path assembly, and counter bookkeeping
    ride every get; budgeted at <= 1.1x ``cache_flat_get`` in the same
    run — the sharded layout and the cache's bookkeeping together may
    cost at most 10% over a bare flat read+decode.
    """
    cache, _, config = _cache_fixture()
    n = 0
    for _ in range(100):
        n += len(cache.get(config).samples)
    return n


def cache_flat_get():
    """The reference: 100 bare flat-file reads + frame decodes."""
    from repro.core.wire import decode_result
    _, flat, config = _cache_fixture()
    n = 0
    for _ in range(100):
        n += len(decode_result(config, flat.read_bytes()).samples)
    return n


#: The grid behind the batched-dispatch pair: 64 distinct cheap DES
#: cells, where per-message queue + pickling overhead dominates unless
#: many cells ride one message.
def _batch_cells():
    from repro.core import plan_cells
    base = PtpBenchmarkConfig(message_bytes=64, partitions=1,
                              compute_seconds=1e-5, iterations=1, warmup=0)
    return plan_cells(base, [64 * (i + 1) for i in range(64)], [1])


_BATCHED_POOL = None
_PERTASK_POOL = None


def pool_batched_sweep64():
    """64 cheap cells on a warm pool with adaptive chunked dispatch.

    The first (untimed warmup) call feeds the pool's per-task cost EMA,
    so the timed repeats dispatch calibrated multi-task chunks.
    Budgeted at <= 1.0x ``pool_pertask_sweep64`` in the same run: the
    batched result plane must beat strict per-task dispatch on exactly
    the workload batching exists for.
    """
    global _BATCHED_POOL
    from repro.core import WorkerPool, run_cells
    if _BATCHED_POOL is None:
        _BATCHED_POOL = WorkerPool(2)
    results, _ = run_cells(_batch_cells(), jobs=2, pool=_BATCHED_POOL)
    return len(results)


def pool_pertask_sweep64():
    """The same 64 cells with ``max_chunk=1``: one queue message per task
    (the pre-batching wire behaviour, kept as the comparison baseline).
    """
    global _PERTASK_POOL
    from repro.core import WorkerPool, run_cells
    if _PERTASK_POOL is None:
        _PERTASK_POOL = WorkerPool(2, max_chunk=1)
    results, _ = run_cells(_batch_cells(), jobs=2, pool=_PERTASK_POOL)
    return len(results)


#: Fixture behind the service kernel: a live daemon on an ephemeral
#: loopback port with the ship-fixture result pre-cached, plus a client
#: and the request payload addressing it.
_SERVICE_FIXTURE = None


def _service_fixture():
    global _SERVICE_FIXTURE
    if _SERVICE_FIXTURE is None:
        import tempfile
        from repro.core import ResultCache
        from repro.service import (ServiceClient, SweepScheduler,
                                   payload_from_config, serve)
        config, result = _ship_fixture()
        root = tempfile.mkdtemp(prefix="repro-bench-service-")
        cache = ResultCache(root)
        cache.put(config, result)
        # batch_window=0 so the kernel times the request path, not the
        # straggler-collection window.
        scheduler = SweepScheduler(cache=cache, jobs=1, quota=1 << 16,
                                   batch_window=0.0, dispatchers=1)
        service = serve(scheduler, port=0)
        client = ServiceClient("http://%s:%d" % service.address,
                               client_id="bench")
        _SERVICE_FIXTURE = (client, payload_from_config(config))
    return _SERVICE_FIXTURE


def service_hot_request():
    """25 already-cached trial requests through the live daemon.

    The sweep service's hot path end to end: HTTP round-trip, strict
    request validation, quota admission, scheduler dispatch, and a
    memory-tier cache hit — the cost a client pays for a config the
    daemon has already answered.  No simulation runs.
    """
    client, payload = _service_fixture()
    n = 0
    for _ in range(25):
        n += client.trial(payload)["n_samples"]
    return n


def _build_sweep():
    sizes = [64 * 4 ** k for k in range(10)]
    counts = [1, 2, 4, 8, 16, 32]
    sweep = SweepResult()
    for n in counts:
        for m in sizes:
            if m < n:
                continue
            cfg = PtpBenchmarkConfig(message_bytes=m, partitions=n)
            sweep.add(SweepPoint(config=cfg, result=PtpResult(config=cfg)))
    return sweep, sizes, counts


_SWEEP_CACHE = None


def sweep_point_lookup():
    global _SWEEP_CACHE
    if _SWEEP_CACHE is None:
        _SWEEP_CACHE = _build_sweep()
    sweep, sizes, counts = _SWEEP_CACHE
    hits = 0
    for _ in range(50):
        for n in counts:
            for m in sizes:
                if m >= n:
                    hits += sweep.point(m, n).config.partitions
    return hits


def obs_emission_disabled():
    bus = EventBus()
    emit = bus.emit
    for _ in range(100_000):
        emit(PART_PREADY, 1.0, 0, 0, 0, None)
    return bus.subscribed(PART_PREADY)


def obs_emission_counted():
    bus = EventBus()
    counters = bus.attach(CounterSink(), ("part.pready",))
    emit = bus.emit
    for _ in range(10_000):
        emit(PART_PREADY, 1.0, 0, 0, 0, None)
    return counters.total


def _lint_workload() -> str:
    """Synthetic lint workload — keep in sync with bench_kernel.py."""
    template = (
        "def exchange_{i}(ctx, comm, tc):\n"
        "    ps = yield from comm.psend_init(tc, 1, {i}, 4096, 8)\n"
        "    pr = yield from comm.precv_init(tc, 1, {i}, 4096, 8)\n"
        "    for epoch in range(4):\n"
        "        yield from ps.start(tc)\n"
        "        yield from pr.start(tc)\n"
        "        for p in range(0, 4):\n"
        "            ps.note_buffer_write(p)\n"
        "            yield from ps.pready(tc, p)\n"
        "        if epoch > 1:\n"
        "            yield from ps.pready_range(tc, 4, 5)\n"
        "            yield from ps.pready_range(tc, 6, 7)\n"
        "        else:\n"
        "            for p in range(4, 8):\n"
        "                yield from ps.pready(tc, p)\n"
        "        yield from ps.wait(tc)\n"
        "        yield from pr.wait(tc)\n"
        "    return ps, pr\n"
    )
    return "\n".join(template.format(i=i) for i in range(16))


_LINT_SOURCE = None


def lint_throughput():
    global _LINT_SOURCE
    if _LINT_SOURCE is None:
        _LINT_SOURCE = _lint_workload()
    findings = lint_source(_LINT_SOURCE, "workload.py")
    assert findings == []
    return len(findings)


KERNELS = {
    "timeout_dispatch": timeout_dispatch,
    "never_waited_timeouts": never_waited_timeouts,
    "process_switching": process_switching,
    "store_handoff": store_handoff,
    "end_to_end_trial": end_to_end_trial,
    "faults_off_overhead": faults_off_overhead,
    "paper_cell_trial": paper_cell_trial,
    "analytic_eval": analytic_eval,
    "planner_reference": planner_reference,
    "planner_overhead": planner_overhead,
    "pool_cold_spawn": pool_cold_spawn,
    "pool_warm_sweep": pool_warm_sweep,
    "ship_roundtrip_codec": ship_roundtrip_codec,
    "ship_roundtrip_dict": ship_roundtrip_dict,
    "cache_hot_get": cache_hot_get,
    "cache_flat_get": cache_flat_get,
    "pool_batched_sweep64": pool_batched_sweep64,
    "pool_pertask_sweep64": pool_pertask_sweep64,
    "service_hot_request": service_hot_request,
    "sweep_point_lookup": sweep_point_lookup,
    "obs_emission_disabled": obs_emission_disabled,
    "obs_emission_counted": obs_emission_counted,
    "lint_throughput": lint_throughput,
}

#: Per-kernel regression budgets overriding ``--threshold``.  Emission
#: with no subscriber is the instrumentation layer's core promise — it
#: rides every simulator hot path — so it gets a hard 5% budget instead
#: of the forgiving 2x default.
THRESHOLDS = {
    "obs_emission_disabled": 1.05,
    # A clean trial against the pre-fault-subsystem baseline: the
    # disabled fault hooks on the NIC/transmit/handler paths must stay
    # within 5% of a tree that had no hooks at all.
    "faults_off_overhead": 1.05,
    # The two kernels the fast-path work targeted: a tight budget keeps
    # the ring / bucket / free-list wins from silently eroding.
    "timeout_dispatch": 1.25,
    "store_handoff": 1.25,
    # Both analyzer passes over the synthetic workload: the CI lint step
    # runs over the whole tree, so a super-linear blow-up in the flow
    # pass (CFG size, fixpoint visits) must not hide behind the 2x
    # default for long.
    "lint_throughput": 1.5,
}

#: Same-run cross-kernel budgets: ``current[a] <= limit * current[b]``.
#: Unlike the baseline thresholds these compare two kernels measured on
#: the same host in the same run, so no calibration drift can hide (or
#: fake) a violation.
RATIO_CHECKS = (
    # The analytic fast path must answer a cell in <= 1/100th of the
    # simulator's time for the identical paper-grid cell.
    ("analytic_eval", "paper_cell_trial", 0.01),
    # The adaptive planner's bookkeeping must be invisible (<= 5%) when
    # it is forced to run exactly the trials a plain run would.
    ("planner_overhead", "planner_reference", 1.05),
    # A warm re-sweep on a kept pool must cost at most half of the same
    # sweep paying spawn + boot + shutdown every time — the boot-once
    # promise of repro.core.pool.
    ("pool_warm_sweep", "pool_cold_spawn", 0.5),
    # The binary wire codec must round-trip a shipped result at least
    # twice as fast as the dict-of-lists shape it replaced.
    ("ship_roundtrip_codec", "ship_roundtrip_dict", 0.5),
    # A hot get through the sharded cache (envelope check, shard path,
    # counters) may cost at most 10% over a bare flat read+decode.
    ("cache_hot_get", "cache_flat_get", 1.1),
    # Batched dispatch must beat strict per-task dispatch on a warm
    # 64-cheap-cell sweep — the workload chunking exists for.
    ("pool_batched_sweep64", "pool_pertask_sweep64", 1.0),
)


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------

def _calibrate(reps: int = 10) -> float:
    """Seconds for a fixed pure-Python arithmetic loop (machine speed)."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        total = 0
        for i in range(200_000):
            total += i * i
        best = min(best, time.perf_counter() - start)
    assert total > 0
    return best


def _time_kernel(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds for one call of ``fn``.

    The collector is paused across the timed region: the trial kernels
    allocate heavily, and a cycle-collection pause landing inside one
    repeat adds tens of percent of phantom "regression" that no amount
    of best-of-N filtering removes (the calibration loop allocates
    nothing, so normalization cannot cancel it either).
    """
    fn()  # warm caches / lazy imports outside the timed region
    best = float("inf")
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best


def measure_pair(fast: str, slow: str, repeats: int) -> tuple:
    """Best-of raw seconds for a ratio pair, timed interleaved.

    The two kernels alternate inside one repeat loop, so a host-load
    drift lands on both halves of the ratio instead of whichever kernel
    happened to be in flight when the wave hit.  No calibration: a
    ratio of same-loop times is already unitless.
    """
    fn_fast, fn_slow = KERNELS[fast], KERNELS[slow]
    fn_fast(), fn_slow()  # warm caches / lazy imports untimed
    best_fast = best_slow = float("inf")
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn_fast()
            best_fast = min(best_fast, time.perf_counter() - start)
            start = time.perf_counter()
            fn_slow()
            best_slow = min(best_slow, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best_fast, best_slow


def measure(repeats: int, names=None) -> dict:
    """Calibration-normalized score per kernel (lower is faster).

    Calibration runs both before and after the kernel sweep and the
    *minimum* wins: a transient host-load wave landing on a single
    up-front calibration would silently inflate (or deflate) every
    score in the run, which is exactly the failure mode the tight
    per-kernel budgets cannot tolerate.
    """
    kernels = {n: KERNELS[n] for n in names} if names else KERNELS
    cal_before = _calibrate()
    raw = {name: _time_kernel(fn, repeats) for name, fn in kernels.items()}
    cal = min(cal_before, _calibrate())
    return {name: t / cal for name, t in raw.items()}


# ---------------------------------------------------------------------------
# Guard logic
# ---------------------------------------------------------------------------

def compare(current: dict, baseline: dict, threshold: float):
    """Yield ``(name, current, baseline, ratio, limit, ok)`` rows.

    ``limit`` is the effective budget: the per-kernel entry in
    :data:`THRESHOLDS` when present, else ``threshold``.
    """
    for name, score in current.items():
        limit = THRESHOLDS.get(name, threshold)
        base = baseline.get(name)
        if base is None:
            yield name, score, None, None, limit, True
            continue
        ratio = score / base if base > 0 else float("inf")
        yield name, score, base, ratio, limit, ratio <= limit


def check_ratios(current: dict):
    """Yield ``(fast, slow, ratio, limit, ok)`` for :data:`RATIO_CHECKS`.

    Pairs whose kernels were not measured this run are skipped (e.g. a
    filtered re-measure pass).
    """
    for fast, slow, limit in RATIO_CHECKS:
        if fast not in current or slow not in current:
            continue
        denom = current[slow]
        ratio = current[fast] / denom if denom > 0 else float("inf")
        yield fast, slow, ratio, limit, ratio <= limit


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite BENCH_BASELINE.json from this host")
    parser.add_argument("--baseline", default=str(BASELINE_PATH))
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when current/baseline exceeds this")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable results on stdout")
    parser.add_argument("--json-out", metavar="PATH",
                        help="also write the JSON report to PATH (CI "
                             "artifact); human-readable output still "
                             "prints unless --json is given")
    args = parser.parse_args(argv)

    current = measure(args.repeats)
    baseline_path = pathlib.Path(args.baseline)

    if args.update:
        payload = {"version": BASELINE_VERSION, "scores": current}
        baseline_path.write_text(json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
        print(f"baseline written to {baseline_path}")
        return 0

    if not baseline_path.exists():
        print(f"error: no baseline at {baseline_path}; run with --update",
              file=sys.stderr)
        return 2
    data = json.loads(baseline_path.read_text())
    if data.get("version") != BASELINE_VERSION:
        print(f"error: baseline version {data.get('version')!r} != "
              f"{BASELINE_VERSION}; regenerate with --update",
              file=sys.stderr)
        return 2

    rows = list(compare(current, data["scores"], args.threshold))
    failed = [r for r in rows if not r[5]]

    # A kernel over budget is re-measured (twice, best score wins)
    # before the run fails: a multi-hundred-millisecond host-load wave
    # can swallow an entire best-of-N repeat loop, and a spike that
    # large looks exactly like a regression.  Real regressions survive
    # the re-measurement; transients do not.
    for attempt in range(2):
        if not failed:
            break
        suspects = [r[0] for r in failed]
        print(f"re-measuring {len(suspects)} kernel(s) over budget "
              f"(transient-noise check {attempt + 1}/2): "
              f"{', '.join(suspects)}", file=sys.stderr)
        retry = measure(args.repeats, names=suspects)
        for name, score in retry.items():
            current[name] = min(current[name], score)
        rows = list(compare(current, data["scores"], args.threshold))
        failed = [r for r in rows if not r[5]]

    # Cross-kernel ratio budgets get a stronger transient-noise grace:
    # a failing pair is re-timed *interleaved* (fast/slow alternating in
    # one loop), so host-load drift cancels out of the ratio instead of
    # landing on whichever kernel the main sweep timed first.
    ratio_rows = list(check_ratios(current))
    for attempt in range(2):
        bad = [r for r in ratio_rows if not r[4]]
        if not bad:
            break
        print(f"re-timing ratio pair(s) over budget interleaved "
              f"(transient-noise check {attempt + 1}/2): "
              + ", ".join(f"{r[0]}/{r[1]}" for r in bad), file=sys.stderr)
        retimed_rows = []
        for fast, slow, ratio, limit, ok in ratio_rows:
            if not ok:
                t_fast, t_slow = measure_pair(fast, slow, args.repeats)
                retimed = t_fast / t_slow if t_slow > 0 else float("inf")
                ratio = min(ratio, retimed)
                ok = ratio <= limit
            retimed_rows.append((fast, slow, ratio, limit, ok))
        ratio_rows = retimed_rows
    failed_ratios = [r for r in ratio_rows if not r[4]]

    report = {
        "ok": not failed and not failed_ratios,
        "threshold": args.threshold,
        "baseline_version": BASELINE_VERSION,
        "results": [
            {"kernel": n, "current": c, "baseline": b, "ratio": r,
             "speedup": (b / c if b is not None and c > 0 else None),
             "limit": lim, "ok": ok}
            for n, c, b, r, lim, ok in rows
        ],
        "ratios": [
            {"kernel": fast, "reference": slow, "ratio": ratio,
             "limit": limit, "ok": ok}
            for fast, slow, ratio, limit, ok in ratio_rows
        ],
    }
    if args.json_out:
        pathlib.Path(args.json_out).write_text(
            json.dumps(report, indent=2) + "\n")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for name, cur, base, ratio, limit, ok in rows:
            if base is None:
                print(f"  {name:24s} {cur:9.3f}  (no baseline — add with "
                      f"--update)")
            else:
                # speedup is baseline/current: >1 means this tree is
                # faster than the checked-in baseline.
                print(f"  {name:24s} {cur:9.3f} vs {base:9.3f} "
                      f"(speedup {base / cur:5.2f}x, limit {limit:g}x)  "
                      f"{'ok' if ok else f'REGRESSION >{limit:g}x'}")
        for fast, slow, ratio, limit, ok in ratio_rows:
            print(f"  {fast} / {slow} = {ratio:.4f} (limit {limit:g})  "
                  f"{'ok' if ok else 'OVER BUDGET'}")
        verdict = "FAIL" if failed or failed_ratios else "PASS"
        checks = len(rows) + len(ratio_rows)
        bad = len(failed) + len(failed_ratios)
        print(f"bench guard: {verdict} "
              f"({checks - bad}/{checks} within budget)")
    return 1 if failed or failed_ratios else 0


if __name__ == "__main__":
    sys.exit(main())
